"""Point-to-point interconnect model.

Delivers :class:`~repro.coherence.messages.Message` objects between
nodes after a configurable latency.  Delivery on each (src, dst) channel
is FIFO: a message never overtakes an earlier message on the same
channel, which real networks guarantee per virtual channel and which
the protocol relies on (e.g. INVAL ordered before a later DATA).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..coherence.messages import Message, NodeId
from ..sim.errors import ConfigurationError
from ..sim.kernel import WAKE_NEVER, Component, Simulator

#: maps a message to its transit latency in cycles
LatencyFn = Callable[[Message], int]


class Interconnect(Component):
    """Latency-only network: no contention, but FIFO per channel.

    Contention modelling is intentionally out of scope — the paper's
    analysis assumes a high-bandwidth pipelined memory system able to
    accept an access every cycle (Section 3.3).
    """

    def __init__(self, sim: Simulator, latency_fn: LatencyFn, name: str = "net") -> None:
        self.sim = sim
        self.latency_fn = latency_fn
        self.name = name
        self._endpoints: Dict[NodeId, Callable[[Message], None]] = {}
        # per-channel watermark enforcing FIFO delivery
        self._last_delivery: Dict[Tuple[NodeId, NodeId], int] = {}
        self._stat_msgs = sim.stats.counter(f"{name}/messages")
        self._stat_hops = sim.stats.counter(f"{name}/total_latency")
        self._in_flight = 0

    def attach(self, node: NodeId, receive: Callable[[Message], None]) -> None:
        if node in self._endpoints:
            raise ConfigurationError(f"node {node!r} already attached to {self.name}")
        self._endpoints[node] = receive

    def send(self, msg: Message) -> None:
        """Send ``msg``; it is delivered ``latency_fn(msg)`` cycles later."""
        if msg.dst not in self._endpoints:
            raise ConfigurationError(f"message to unattached node {msg.dst!r}: {msg.describe()}")
        latency = self.latency_fn(msg)
        if latency < 0:
            raise ConfigurationError(f"negative latency {latency} for {msg.describe()}")
        arrival = self.sim.cycle + latency
        channel = (msg.src, msg.dst)
        floor = self._last_delivery.get(channel, -1)
        arrival = max(arrival, floor)  # FIFO per channel
        self._last_delivery[channel] = arrival
        self._stat_msgs.inc()
        self._stat_hops.inc(latency)
        self._in_flight += 1

        def deliver() -> None:
            self._in_flight -= 1
            self._endpoints[msg.dst](msg)

        self.sim.schedule_at(max(arrival, self.sim.cycle), deliver, label=msg.describe())

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def is_quiescent(self) -> bool:
        return self._in_flight == 0

    def next_wake(self, cycle: int) -> int:
        # purely event-driven: deliveries go through the event queue
        return WAKE_NEVER


def constant_latency(cycles: int) -> LatencyFn:
    """A latency function that charges ``cycles`` for every message."""
    if cycles < 0:
        raise ConfigurationError("latency must be >= 0")
    return lambda msg: cycles

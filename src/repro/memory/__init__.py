"""Memory system: lockup-free caches, interconnect, shared types."""

from .cache import CacheLine, LockupFreeCache, MshrEntry
from .interconnect import Interconnect, constant_latency
from .types import (
    AccessKind,
    AccessRequest,
    CacheConfig,
    LatencyConfig,
    LineState,
    SnoopKind,
)

__all__ = [
    "AccessKind",
    "AccessRequest",
    "CacheConfig",
    "CacheLine",
    "Interconnect",
    "LatencyConfig",
    "LineState",
    "LockupFreeCache",
    "MshrEntry",
    "SnoopKind",
    "constant_latency",
]

"""E8 — Section 6's comparison against competing schemes.

Checks the qualitative claims: binding prefetch gains nothing over the
conventional implementation; Adve–Hill helps writes only slightly and
reads not at all; Stenström's cache-less NST wins only when caches
would not have helped anyway; the paper's techniques dominate.
"""

from conftest import report

from repro.analysis import related_work_table
from repro.baselines import compare_schemes
from repro.workloads import example1_segment, example2_segment


def test_related_work_table(benchmark):
    table = benchmark(related_work_table)
    report(table)
    rows = {row[0]: dict(zip(table.columns, row)) for row in table.rows}

    conv, ours = rows["conventional"], rows["prefetch+speculation"]
    binding = rows["binding-prefetch"]
    adve = rows["adve-hill-sc"]
    nst = rows["stenstrom-nst"]

    # "binding prefetching is quite limited": identical to conventional
    for col in ("example1", "example2", "pointer-chase"):
        assert binding[col] == conv[col]

    # Adve-Hill: write-side gain only, and small
    assert adve["example1"] < conv["example1"]
    assert conv["example1"] - adve["example1"] <= 30
    assert adve["example2"] == conv["example2"]   # reads unaffected

    # Stenström: competitive when everything misses, catastrophic when
    # caches matter (the dependent chain of hits)
    assert nst["cached chase"] > 50 * ours["cached chase"]

    # our techniques dominate every scheme on the paper's examples
    for col in ("example1", "example2"):
        for scheme, row in rows.items():
            assert ours[col] <= row[col], (scheme, col)


def test_scheme_comparison_is_deterministic(benchmark):
    segment = example2_segment()
    results = benchmark(compare_schemes, segment)
    again = compare_schemes(segment)
    assert [(r.scheme, r.total_cycles) for r in results] == \
           [(r.scheme, r.total_cycles) for r in again]

"""Simulator throughput: how fast the stack itself runs.

Not a paper experiment — an engineering benchmark tracking the
simulator's own performance.  Since the host-performance observability
layer landed, this file is a thin wrapper over the shared continuous-
benchmark harness (:mod:`repro.obs.perf`): the same pinned cases, the
same median-of-N measurement, and the same schema-versioned BENCH
record that ``python -m repro.obs bench`` emits — instead of the old
ad-hoc per-test numbers.

Set ``REPRO_BENCH_DIR`` to also append the record to a trajectory
directory (the CI perf-smoke job does this via the CLI instead).
"""

import os

from conftest import report

from repro.obs.perf import (
    default_suite,
    render_record,
    run_suite,
    validate_bench_record,
    write_record,
)


def test_simulator_speed_suite_emits_bench_record():
    suite = default_suite(quick=True)
    record = run_suite(suite, repeats=2, quick=True)

    # the record must satisfy the same schema the regression gate reads
    assert validate_bench_record(record) == []

    cases = record["cases"]
    assert set(cases) == {case.name for case in suite}
    for name, case in cases.items():
        assert case["wall_seconds"] > 0, name
        assert case["peak_rss_kb"] > 0, name
    # the detailed-simulator cases actually simulate a nontrivial machine
    assert cases["critical_section_detailed"]["sim_cycles"] > 100
    assert cases["critical_section_detailed"]["instructions"] > 50
    assert cases["critical_section_detailed"]["kips"] > 0
    assert cases["example1_detailed"]["kips"] > 0
    # the analytical model and the coherence ping-pong report cycle rates
    assert cases["analytical_model"]["cycles_per_second"] > 0
    assert cases["memory_pingpong"]["sim_cycles"] > 40
    # pure-throughput cases report items/s instead of KIPS
    assert cases["fuzz_slice"]["items_per_second"] > 0
    assert cases["sweep_probe"]["items_per_second"] > 0

    report(render_record(record))

    out_dir = os.environ.get("REPRO_BENCH_DIR")
    if out_dir:
        path = write_record(record, out_dir)
        report(f"bench record written to {path}")

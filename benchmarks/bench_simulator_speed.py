"""Simulator throughput: how fast the stack itself runs.

Not a paper experiment — an engineering benchmark tracking the
simulator's own performance (simulated cycles and retired instructions
per wall-second) so regressions in the hot paths show up.
"""

import pytest

from repro.consistency import RC, SC
from repro.core import AnalyticalTimingModel
from repro.system import run_workload
from repro.workloads import critical_section_workload, random_segment


def test_detailed_simulator_throughput(benchmark):
    wl = critical_section_workload(num_cpus=2, iterations=3,
                                   shared_counters=3, private=True)

    def run():
        return run_workload(wl.programs, model=RC, prefetch=True,
                            speculation=True,
                            initial_memory=wl.initial_memory,
                            max_cycles=2_000_000)

    result = benchmark(run)
    # sanity: the run actually simulates a nontrivial machine
    assert result.cycles > 100
    retired = sum(result.counter(f"cpu{c}/instructions_retired")
                  for c in range(2))
    assert retired > 50


def test_analytical_model_throughput(benchmark):
    engine = AnalyticalTimingModel()
    segment = random_segment(length=60, sync_period=8, rng=3)

    def run():
        return engine.schedule(segment, SC, prefetch=True,
                               speculation=True).total_cycles

    total = benchmark(run)
    assert total > 0


def test_memory_system_throughput(benchmark):
    """Raw coherence traffic: ping-pong a line between two caches."""
    from repro.memory import AccessKind, AccessRequest
    from repro.sim import Simulator
    from repro.system.fabric import MemoryFabric

    def run():
        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=2)
        done = []
        for i in range(40):
            req = AccessRequest(req_id=i + 1, kind=AccessKind.STORE,
                                addr=0x40, value=i,
                                callback=lambda r, v: done.append(r.req_id))
            cpu = i % 2
            assert fabric.caches[cpu].access(req)
            sim.run(until=lambda i=i: len(done) > i, max_cycles=100_000,
                    deadlock_check=False)
        return sim.cycle

    cycles = benchmark(run)
    assert cycles > 40

"""E7 — the cost of mis-speculation.

A rollback throws away work, but the paper argues the common case pays
for it.  The bench measures the Figure 5 scenario with invalidations at
different points and checks that even the worst case stays ahead of the
conventional implementation.
"""

from conftest import report

from repro.analysis import rollback_cost_table


def test_rollback_cost(benchmark):
    table = benchmark(rollback_cost_table)
    report(table)
    rows = {row[0]: row for row in table.rows}
    base = rows["conventional (no techniques)"][1]
    clean = rows["both techniques, no interference"][1]
    assert base / clean > 3.0  # the clean speculative run is ~4x
    for name, row in rows.items():
        if name.startswith("both techniques, inval"):
            cycles = row[1]
            assert cycles < base, f"{name}: rollback worse than baseline"
            assert cycles > clean, f"{name}: rollback should cost something"


def test_rollback_squash_counted(benchmark):
    from repro.workloads import run_figure5

    result = benchmark(run_figure5, 5)
    stats = result.machine.sim.stats
    assert stats.counter("cpu0/slb/squashes").value == 1
    assert stats.counter("cpu0/instructions_squashed").value >= 2  # ld D, ld E[D]

"""Scaling studies: the techniques at growing processor counts."""

from conftest import report

from repro.analysis import barrier_scaling_table, cpu_scaling_table


def test_cpu_scaling(benchmark):
    table = benchmark(cpu_scaling_table)
    report(table)
    assert all(row[4] == "yes" for row in table.rows)
    for row in table.rows:
        assert row[3] > 2.0, "the techniques' speedup must persist at scale"
    # per-CPU work is constant and private: adding CPUs must not blow
    # up the runtime (allow modest interconnect-sharing noise)
    cycles_both = table.column_values("both techniques")
    assert max(cycles_both) < 2 * min(cycles_both)


def test_barrier_scaling(benchmark):
    table = benchmark(barrier_scaling_table)
    report(table)
    assert all(row[4] == "yes" for row in table.rows)
    for row in table.rows:
        n, sc_base, sc_both, rc_both, _ = row
        assert sc_both < sc_base            # techniques help through barriers
        assert sc_both < 1.5 * rc_both      # and keep SC near RC

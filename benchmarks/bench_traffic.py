"""E10 — Section 3.2's cost accounting for the prefetch technique.

"The cache will also be more busy since memory references that are
prefetched access the cache twice" — but prefetches only fire in
cycles where demand accesses were stalled, and the prefetch probe
deduplicates against present lines and outstanding MSHRs, so network
traffic must not grow.
"""

from conftest import report

from repro.analysis import traffic_table
from repro.consistency import SC
from repro.system import run_workload
from repro.workloads import example1_program


def test_traffic_accounting(benchmark):
    table = benchmark(traffic_table)
    report(table)
    rows = {row[0]: dict(zip(table.columns, row)) for row in table.rows}
    base, pf = rows["baseline"], rows["prefetch"]
    # the double access shows up at the cache port...
    assert pf["cache port accesses"] > base["cache port accesses"]
    # ...but not on the network: prefetches replace, not duplicate,
    # the demand transactions they merge with
    assert pf["net messages"] <= base["net messages"]
    # and performance improves dramatically despite the busier cache
    assert base["cycles"] / pf["cycles"] > 2.5


def test_prefetch_dedup_against_cache_and_mshr(benchmark):
    """A prefetch for a present or in-flight line must be discarded."""

    def run():
        wl = example1_program()
        # warm everything: all prefetches should be discarded
        return run_workload(
            [wl.program], model=SC, prefetch=True,
            initial_memory=wl.initial_memory,
            warm_lines=[(0, addr, True) for addr in (16, 32, 48)],
        )

    result = benchmark(run)
    stats = result.machine.sim.stats
    assert stats.counter("cache0/prefetches_issued").value == 0
    assert stats.counter("cache0/prefetches_discarded").value >= 1

"""E4 — Figure 5 (Section 4.3): the speculative-load rollback trace.

Runs the read A; write B; write C; read D; read E[D] segment under SC
with both techniques while a remote write invalidates D, and checks the
paper's event narrative: the consumed value of D is detected stale, the
load and its dependents are discarded and re-executed, and the final
state reflects the new value.
"""

from conftest import report

from repro.analysis import figure5_report
from repro.workloads import run_figure5


def test_figure5_rollback_narrative(benchmark):
    result = benchmark(run_figure5, 5)
    _, table = figure5_report(inval_cycle=5)
    report(table)

    assert result.has_event("exclusive prefetches issued for stores B and C")
    assert result.has_event(
        "invalidation for D arrives; load D and following discarded")
    assert result.has_event("read of D is reissued")
    assert result.has_event("new value for D arrives")
    assert result.has_event("value for E[D] arrives")

    machine = result.machine
    assert machine.reg(0, "r2") == 1          # the remote agent's new D
    assert machine.reg(0, "r3") == 700        # E[new D], re-read correctly
    assert machine.sim.stats.counter("cpu0/slb/squashes").value == 1


def test_figure5_without_interference_no_rollback(benchmark):
    """Control: with no remote write, speculation runs clean."""

    def run_clean():
        # launch the "invalidation" so late the program has finished
        return run_figure5(inval_cycle=50_000, max_cycles=200_000)

    result = benchmark(run_clean)
    assert result.machine.reg(0, "r2") == 0   # original D
    assert result.machine.reg(0, "r3") == 500  # E[0]
    assert result.machine.sim.stats.counter("cpu0/slb/squashes").value == 0
    # clean speculative run ≈ one miss + pipeline: far under 2 misses
    assert result.cycles < 160


def test_figure5_inflight_invalidation_reissues_only(benchmark):
    """The second correction case (Section 4.2): a coherence event for a
    load still in flight reissues just that load, with no rollback."""

    def run_hit_e_line():
        # E[0]'s line is in flight from ~cycle 7 to ~107; a remote write
        # to it in that window must trigger the reissue path
        return run_figure5(inval_cycle=5, new_d_value=0)

    result = benchmark(run_hit_e_line)
    # writing D with its old value still squashes (conservative
    # detection, footnote 2): value-equality is not checked
    assert result.machine.sim.stats.counter("cpu0/slb/squashes").value >= 1

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index), asserts the *shape* the paper reports
(who wins, by roughly what factor), and prints the rendered table so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` leaves a
complete experiment report.
"""

from __future__ import annotations


def report(table_or_text) -> None:
    """Print a table (or plain text) with surrounding whitespace so it
    survives pytest's output capture settings (-s recommended)."""
    text = table_or_text.render() if hasattr(table_or_text, "render") else str(table_or_text)
    print()
    print(text)
    print()

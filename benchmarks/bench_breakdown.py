"""E11 — Stall breakdown (the paper's Figures 3-7 presentation).

For each model x technique cell of Example 2, split execution time into
busy / read / write / acquire stall components, normalized so each
model's baseline bar is 100.  The paper's qualitative claims become
assertable shape properties:

* read stall dominates the baseline under SC (the serialised misses);
* prefetching shrinks read stall but cannot touch the dependent
  ``read E[D]`` miss; speculation removes read stall almost entirely;
* per-CPU cause counts always sum exactly to the run's cycle count.
"""

from conftest import report

from repro.obs.report import example_breakdown_matrix
from repro.sim.stats import StatsRegistry


def test_breakdown_matrix_example2(benchmark):
    merged = StatsRegistry()
    table = benchmark(example_breakdown_matrix, "example2",
                      normalize=True, merged=merged)
    report(table)

    rows = {(row[0], row[1]): row for row in table.rows}
    # columns: model, technique, busy, read, write, acquire, other, total
    sc_base = rows[("SC", "baseline")]
    sc_spec = rows[("SC", "speculation")]
    assert sc_base[7] == 100.0
    # read stall dominates the SC baseline...
    assert sc_base[3] > sc_base[2] + sc_base[4] + sc_base[5]
    # ...and speculation removes nearly all of it
    assert sc_spec[3] < 0.1 * sc_base[3]
    assert sc_spec[7] < 0.5 * sc_base[7]
    # prefetch alone helps SC but is beaten by speculation (the
    # dependent read E[D] cannot be prefetched)
    assert rows[("SC", "prefetch")][7] < sc_base[7]
    assert sc_spec[7] < rows[("SC", "prefetch")][7]

    # the merged registry holds every cell's counters: the SC baseline
    # cause counters must sum exactly to its cycle count scale (100%)
    from repro.obs.accounting import breakdown_from_stats
    bd = breakdown_from_stats(merged, cpu=0, prefix="SC/baseline/")
    assert bd.total > 0
    assert sum(bd.counts.values()) == bd.total

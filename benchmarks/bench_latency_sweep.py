"""E6 — miss-latency sensitivity.

The techniques hide exactly the latency the consistency model exposes,
so their speedup must grow (and saturate) with miss latency, and the
equalized SC/RC totals must track each other across the whole sweep.
"""

from conftest import report

from repro.analysis import latency_sweep_table
from repro.workloads import example1_segment


def test_latency_sweep_example2(benchmark):
    table = benchmark(latency_sweep_table)
    report(table)
    speedups = table.column_values("SC speedup")
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])), \
        "speedup must be monotonically non-decreasing in miss latency"
    assert speedups[-1] > 2.5
    for row in table.rows:
        _, sc_base, rc_base, sc_both, rc_both, _ = row
        assert sc_both == rc_both  # equalized at every latency point


def test_latency_sweep_example1(benchmark):
    table = benchmark(
        latency_sweep_table, (20, 50, 100, 200, 400),
        example1_segment(), "example1",
    )
    report(table)
    for row in table.rows:
        lat, sc_base, rc_base, sc_both, rc_both, speedup = row
        # baseline SC serializes 3 misses; with both techniques only
        # the lock's miss remains exposed
        assert sc_base >= 3 * lat
        assert sc_both <= lat + 10

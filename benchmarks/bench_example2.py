"""E3 — Example 2 (Sections 3.3/4.1): consumer critical section.

Paper's numbers: SC 302 / RC 203 baseline; 203 / 202 with prefetch
(prefetching fails on the dependent read E[D]); 104 / 104 with
speculative loads.  Analytical model must match exactly; detailed
simulator must match the shape.
"""

from conftest import report

from repro.analysis import example_cycle_table
from repro.consistency import RC, SC
from repro.core import AnalyticalTimingModel
from repro.sim import sweep_map
from repro.workloads import PAPER_CYCLE_COUNTS, example2_segment


def test_example2_analytical_exact(benchmark):
    engine = AnalyticalTimingModel()
    segment = example2_segment()
    cells = [(model, tech, pf, sp)
             for model in (SC, RC)
             for tech, (pf, sp) in {
                 "baseline": (False, False),
                 "prefetch": (True, False),
                 "prefetch+speculation": (True, True),
             }.items()]

    def run_all():
        totals = sweep_map(
            lambda cell: engine.schedule(segment, cell[0], prefetch=cell[2],
                                         speculation=cell[3]).total_cycles,
            cells)
        return {(model.name, tech): t
                for (model, tech, _, _), t in zip(cells, totals)}

    totals = benchmark(run_all)
    report(example_cycle_table("example2"))
    for key, expected in {
        ("SC", "baseline"): 302, ("RC", "baseline"): 203,
        ("SC", "prefetch"): 203, ("RC", "prefetch"): 202,
        ("SC", "prefetch+speculation"): 104, ("RC", "prefetch+speculation"): 104,
    }.items():
        assert totals[key] == expected, key


def test_example2_detailed_shape(benchmark):
    table = benchmark(example_cycle_table, "example2", True)
    report(table)
    rows = {row[0]: row for row in table.rows}
    sc = dict(zip(table.columns, rows["SC"]))
    rc = dict(zip(table.columns, rows["RC"]))
    # prefetch alone only removes ~1 miss under SC (dependent E[D]
    # still serialized); speculation removes ~2 more
    assert sc["baseline"] / sc["prefetch"] < 1.7
    assert sc["baseline"] / sc["prefetch+speculation"] > 2.5
    # speculation equalizes SC and RC
    assert abs(sc["prefetch+speculation"] - rc["prefetch+speculation"]) <= 5


def test_example2_prefetch_fails_on_dependent_load(benchmark):
    """The paper's key negative result: prefetching cannot help when
    out-of-order consumption of return values is needed."""
    engine = AnalyticalTimingModel()
    segment = example2_segment()

    def schedule():
        return engine.schedule(segment, SC, prefetch=True)

    res = benchmark(schedule)
    e_timing = res.timing("read E[D]")
    d_timing = res.timing("read D")
    assert e_timing.issue > d_timing.complete          # stays serialized
    assert res.total_cycles >= 2 * 100                 # ~two misses exposed

"""E1 — Figure 1: ordering restrictions of SC/PC/WC/RC.

Regenerates the delay-arc semantics as litmus outcome sets and checks
the relaxation hierarchy the figure depicts.
"""

from conftest import report

from repro.analysis import litmus_outcome_table
from repro.consistency import ALL_MODELS, PC, RC, SC, WC, store_buffering


def test_figure1_litmus_matrix(benchmark):
    table = benchmark(litmus_outcome_table)
    report(table)

    def column(model_name):
        return table.column_values(model_name)

    # SC forbids everything; RC allows all unlabelled relaxations
    assert all(v == "forbidden" for v in column("SC"))
    sb, mp, mp_sync, lb, coh = range(5)
    assert table.cell(sb, "PC") == "allowed"        # W->R relaxed
    assert table.cell(mp, "PC") == "forbidden"      # W->W, R->R kept
    assert table.cell(mp, "RC") == "allowed"
    assert table.cell(lb, "WC") == "allowed"
    # properly-labelled sync and per-location coherence hold everywhere
    for model in ALL_MODELS:
        assert table.cell(mp_sync, model.name) == "forbidden"
        assert table.cell(coh, model.name) == "forbidden"


def test_figure1_outcome_sets_grow_monotonically(benchmark):
    test = store_buffering()

    def outcome_counts():
        return {m.name: len(test.outcomes(m)) for m in (SC, PC, WC, RC)}

    counts = benchmark(outcome_counts)
    assert counts["SC"] <= counts["PC"] <= counts["WC"] <= counts["RC"]
    assert counts["SC"] < counts["RC"]  # the relaxation is real

"""E5 — Section 5's headline claim: the techniques equalize the models.

Analytical sweep over diverse segments plus a detailed-simulator
critical-section run; asserts the SC/RC gap collapses toward 1.0 once
both techniques are enabled.
"""

from conftest import report

from repro.analysis import detailed_equalization_table, equalization_table


def test_equalization_analytical(benchmark):
    table = benchmark(equalization_table)
    report(table)
    for row in table.rows:
        workload, sc_base, rc_base, gap, sc_both, rc_both, gap_after = row
        assert gap >= gap_after - 1e-9, workload  # the gap never widens
        assert gap_after <= 1.1, (workload, gap_after)  # near-equalized
        # and the techniques never slow anything down
        assert sc_both <= sc_base and rc_both <= rc_base


def test_equalization_detailed(benchmark):
    table = benchmark(detailed_equalization_table)
    report(table)
    both = {row[0]: row[2] for row in table.rows}
    base = {row[0]: row[1] for row in table.rows}
    # baseline spread is significant; post-technique spread is small
    assert max(base.values()) / min(base.values()) > 1.2
    assert max(both.values()) / min(both.values()) < 1.15
    # and every model got faster
    for model in both:
        assert both[model] < base[model]

"""Ablations over the implementation's design choices (DESIGN.md §8).

Each test regenerates one ablation table and asserts the structural
result the paper's argument predicts.
"""

from conftest import report

from repro.analysis import (
    false_sharing_table,
    hw_vs_sw_prefetch_table,
    lookahead_window_table,
    prefetch_bandwidth_table,
    protocol_table,
    rob_size_table,
    slb_size_table,
)


def test_lookahead_window(benchmark):
    table = benchmark(lookahead_window_table)
    report(table)
    cycles = table.column_values("cycles")
    assert cycles == sorted(cycles, reverse=True), \
        "a larger window can only help"
    assert cycles[0] > 1.5 * cycles[-1], "window starvation must be visible"


def test_hw_vs_sw_prefetch(benchmark):
    table = benchmark(hw_vs_sw_prefetch_table)
    report(table)
    rows = {row[0]: row for row in table.rows}
    none_, hw_small = rows["no prefetch"][1], rows["hardware, window=3"][1]
    hw_big = rows["hardware, window=32"][1]
    sw_small = rows["software, window=3"][1]
    # both forms beat no prefetch handily
    assert hw_small < none_ / 2 and sw_small < none_ / 2
    # Section 6: software's unlimited window beats a starved hardware
    # window; a big hardware window wins back the instruction overhead
    assert sw_small < hw_small
    assert hw_big <= sw_small
    # software prefetch costs instruction slots
    assert rows["software, window=3"][2] > rows["no prefetch"][2]


def test_slb_size(benchmark):
    table = benchmark(slb_size_table)
    report(table)
    cycles = table.column_values("cycles")
    assert cycles == sorted(cycles, reverse=True)
    assert cycles[0] > 1.5 * cycles[-1]


def test_rob_size(benchmark):
    table = benchmark(rob_size_table)
    report(table)
    cycles = table.column_values("cycles")
    assert cycles == sorted(cycles, reverse=True)


def test_prefetch_bandwidth(benchmark):
    table = benchmark(prefetch_bandwidth_table)
    report(table)
    cycles = table.column_values("cycles")
    # prefetches fire during stall cycles, so 1/cycle already saturates
    assert max(cycles) - min(cycles) <= 5


def test_false_sharing_ablation(benchmark):
    table = benchmark(false_sharing_table)
    report(table)
    rows = {row[0]: row for row in table.rows}
    packed = rows["packed (one line)"]
    padded = rows["padded (own lines)"]
    assert packed[3] == padded[3] == "yes"   # correctness is never traded
    assert packed[1] > padded[1]             # but packed pays cycles
    assert packed[2] >= padded[2]            # via conservative squashes


def test_protocol_ablation(benchmark):
    table = benchmark(protocol_table)
    report(table)
    rows = {row[0]: row for row in table.rows}
    assert rows["invalidate"][3] > 3.0      # big win with invalidations
    assert rows["update"][3] < 1.2          # no win without them

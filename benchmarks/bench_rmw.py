"""E9 — Appendix A: atomic read-modify-writes under speculation.

A contended test&set lock hand-off between two CPUs: the speculative
read-exclusive must accelerate lock acquisition without ever breaking
mutual exclusion.
"""

from conftest import report

from repro.analysis import rmw_handoff_table
from repro.consistency import RC, SC
from repro.system import run_workload
from repro.workloads import critical_section_workload


def test_rmw_handoff(benchmark):
    table = benchmark(rmw_handoff_table)
    report(table)
    # the load-bearing claim under contention is *correctness*: mutual
    # exclusion must survive speculative RMWs and their rollbacks.
    # (Performance under a heavily contended test&set lock is the case
    # the paper flags as the technique's limit — invalidation
    # probability is high — so no speedup is asserted here; see
    # test_rmw_uncontended_latency for Appendix A's fast path.)
    assert all(row[3] == "yes" for row in table.rows), \
        "mutual exclusion must hold in every configuration"
    cycles = {(row[0], row[1]): row[2] for row in table.rows}
    for model in ("SC", "RC"):
        base = cycles[(model, "baseline")]
        both = cycles[(model, "prefetch+speculation")]
        assert both < base * 1.5, "rollback overhead must stay bounded"


def test_rmw_uncontended_latency(benchmark):
    """Appendix A's fast path: the speculative read-exclusive makes the
    eventual atomic a cache hit."""

    def run(spec):
        wl = critical_section_workload(num_cpus=1, iterations=2,
                                       shared_counters=1, private=True)
        return run_workload(wl.programs, model=SC, prefetch=spec,
                            speculation=spec,
                            initial_memory=wl.initial_memory,
                            max_cycles=1_000_000).cycles

    base = run(False)
    fast = benchmark(run, True)
    assert fast < base

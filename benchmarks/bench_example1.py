"""E2 — Example 1 (Section 3.3): producer critical section.

Paper's numbers: SC 301, RC 202 baseline; 103 for both with prefetch.
The analytical model must match exactly; the detailed simulator must
match the shape (same winners, same ~3x factor, models equalized).
"""

from conftest import report

from repro.analysis import example_cycle_table
from repro.consistency import RC, SC
from repro.core import AnalyticalTimingModel
from repro.sim import sweep_map
from repro.workloads import PAPER_CYCLE_COUNTS, example1_segment


def test_example1_analytical_exact(benchmark):
    engine = AnalyticalTimingModel()
    segment = example1_segment()
    cells = [(m, pf) for m in (SC, RC) for pf in (False, True)]

    def run_all():
        totals = sweep_map(
            lambda cell: engine.schedule(segment, cell[0],
                                         prefetch=cell[1]).total_cycles,
            cells)
        return {(m.name, pf): t for (m, pf), t in zip(cells, totals)}

    totals = benchmark(run_all)
    report(example_cycle_table("example1"))
    assert totals[("SC", False)] == PAPER_CYCLE_COUNTS[("example1", "SC", "baseline")] == 301
    assert totals[("RC", False)] == PAPER_CYCLE_COUNTS[("example1", "RC", "baseline")] == 202
    assert totals[("SC", True)] == PAPER_CYCLE_COUNTS[("example1", "SC", "prefetch")] == 103
    assert totals[("RC", True)] == PAPER_CYCLE_COUNTS[("example1", "RC", "prefetch")] == 103


def test_example1_detailed_shape(benchmark):
    table = benchmark(example_cycle_table, "example1", True)
    report(table)
    rows = {row[0]: row for row in table.rows}
    sc_base, sc_pf = rows["SC"][1], rows["SC"][2]
    rc_base, rc_pf = rows["RC"][1], rows["RC"][2]
    # shape: baseline SC ~1.5x RC; prefetch gives ~3x on SC and
    # equalizes the two models to within a few pipeline cycles
    assert 1.3 <= sc_base / rc_base <= 1.7
    assert sc_base / sc_pf > 2.5
    assert abs(sc_pf - rc_pf) <= 5

"""Uncached (Appendix A non-cached) locations: atomically at the home."""

import pytest

from repro.consistency import RC, SC
from repro.isa import ProgramBuilder, assemble, interpret
from repro.memory import CacheConfig, LineState
from repro.system import run_workload

UNCACHED = ((0x1000, 0x1100),)


def cfg():
    return CacheConfig(uncached_ranges=UNCACHED)


class TestUncachedBasics:
    def test_uncached_roundtrip(self):
        p = assemble("""
            movi r1, 7
            st   r1, 0x1000
            ld   r2, 0x1000
            halt
        """)
        result = run_workload([p], model=SC, cache=cfg())
        assert result.machine.reg(0, "r2") == 7
        assert result.machine.fabric.directory.read_word(0x1000) == 7

    def test_uncached_rmw_semantics(self):
        p = assemble("""
            movi r3, 5
            rmw.add r1, 0x1000, r3
            rmw.ts  r2, 0x1004
            halt
        """)
        result = run_workload([p], model=SC, cache=cfg(),
                              initial_memory={0x1000: 10})
        assert result.machine.reg(0, "r1") == 10
        assert result.machine.reg(0, "r2") == 0
        assert result.machine.fabric.directory.read_word(0x1000) == 15
        assert result.machine.fabric.directory.read_word(0x1004) == 1

    def test_uncached_line_never_enters_cache(self):
        p = assemble("ld r1, 0x1000\nld r2, 0x1000\nhalt")
        result = run_workload([p], model=SC, cache=cfg(),
                              initial_memory={0x1000: 3})
        cache = result.machine.fabric.caches[0]
        assert cache.line_state(0x1000) is LineState.INVALID
        assert result.machine.reg(0, "r2") == 3

    def test_prefetch_to_uncached_discarded(self):
        p = assemble("pf.x 0x1000\nhalt")
        result = run_workload([p], model=SC, cache=cfg(), prefetch=True)
        assert result.counter("cache0/prefetches_issued") == 0
        assert result.counter("cache0/prefetches_discarded") >= 1

    def test_matches_interpreter_under_all_configs(self):
        p = assemble("""
            movi r1, 2
            st   r1, 0x1000
            rmw.add r2, 0x1000, r1
            ld   r3, 0x1000
            st   r3, 0x40
            ld   r4, 0x40
            halt
        """)
        expected = interpret(p)
        for model in (SC, RC):
            for spec in (False, True):
                result = run_workload([p], model=model, prefetch=spec,
                                      speculation=spec, cache=cfg())
                for reg in ("r2", "r3", "r4"):
                    assert result.machine.reg(0, reg) == expected.reg(reg), \
                        (model.name, spec, reg)


class TestUncachedNoSpeculation:
    def test_no_speculative_read_for_uncached_rmw(self):
        """Appendix A: 'there is no speculative load for non-cached
        read-modify-write accesses' — no SLB traffic for them."""
        b = ProgramBuilder()
        b.rmw("r1", addr=0x1000, op="ts", acquire=True, tag="uncached lock")
        p = b.build()
        result = run_workload([p], model=SC, speculation=True, cache=cfg())
        assert result.counter("cpu0/slb/inserted") == 0

    def test_uncached_load_delayed_conventionally(self):
        """An uncached load cannot be monitored, so even with
        speculation on it waits for the consistency model."""
        b = ProgramBuilder()
        b.rmw("r9", addr=0x40, op="ts", acquire=True, tag="lock")  # cached
        b.load("r1", addr=0x1000, tag="uncached data")
        p = b.build()
        spec = run_workload([p], model=SC, speculation=True, cache=cfg())
        # the uncached load waits for the lock: ~two serialized misses
        assert spec.cycles > 190
        assert spec.counter("cpu0/lsu/rs_consistency_stalls") > 0

    def test_cached_loads_still_speculate_alongside(self):
        b = ProgramBuilder()
        b.rmw("r9", addr=0x40, op="ts", acquire=True, tag="lock")
        b.load("r1", addr=0x80, tag="cached data")
        p = b.build()
        result = run_workload([p], model=SC, speculation=True, cache=cfg())
        assert result.counter("cpu0/slb/inserted") >= 1
        assert result.cycles < 160  # overlapped


class TestUncachedMultiprocessor:
    def test_uncached_lock_mutual_exclusion(self):
        """A lock living at an uncached address: the home node's
        serialization is what makes the test&set atomic."""
        LOCK, COUNTER, ITERS = 0x1000, 0x40, 2

        def worker():
            b = ProgramBuilder()
            b.mov_imm("r9", ITERS)
            b.label("again")
            b.lock(addr=LOCK)
            b.load("r1", addr=COUNTER)
            b.add_imm("r1", "r1", 1)
            b.store("r1", addr=COUNTER)
            b.unlock(addr=LOCK)
            b.alu("sub", "r9", "r9", imm=1)
            b.branch_nonzero("r9", "again", predict_taken=True)
            return b.build()

        for spec in (False, True):
            result = run_workload([worker(), worker()], model=SC,
                                  speculation=spec, prefetch=spec,
                                  cache=cfg(),
                                  initial_memory={LOCK: 0, COUNTER: 0},
                                  max_cycles=5_000_000)
            assert result.machine.read_word(COUNTER) == 2 * ITERS, f"spec={spec}"
            assert result.machine.fabric.directory.read_word(LOCK) == 0

"""Tests for the related-work baselines and the analysis layer."""

import pytest

from repro.baselines import (
    adve_hill_sc,
    binding_prefetch,
    compare_schemes,
    conventional,
    our_techniques,
    stenstrom_nst,
)
from repro.analysis import (
    Table,
    bar_chart,
    equalization_table,
    example_cycle_table,
    latency_sweep_table,
    litmus_outcome_table,
    related_work_table,
    series_chart,
    speedup_table,
)
from repro.consistency import RC, SC
from repro.core.timing import TimingConfig
from repro.sim.errors import ConfigurationError
from repro.workloads import (
    example1_segment,
    example2_segment,
    pointer_chase_segment,
)


class TestBaselineSchemes:
    def test_conventional_matches_paper(self):
        assert conventional(example1_segment(), SC).total_cycles == 301
        assert conventional(example2_segment(), RC).total_cycles == 203

    def test_binding_prefetch_equals_conventional(self):
        """Section 6: binding prefetch cannot start before the access."""
        for seg in (example1_segment(), example2_segment()):
            assert (binding_prefetch(seg, SC).total_cycles
                    == conventional(seg, SC).total_cycles)

    def test_adve_hill_helps_writes_only(self):
        seg1 = example1_segment()  # write-dominated
        seg2 = example2_segment()  # read-dominated
        assert adve_hill_sc(seg1).total_cycles < conventional(seg1, SC).total_cycles
        assert adve_hill_sc(seg2).total_cycles == conventional(seg2, SC).total_cycles

    def test_adve_hill_gain_is_limited(self):
        """'the latency of obtaining ownership is often only slightly
        smaller than the latency for the write to complete.'"""
        seg = example1_segment()
        conv = conventional(seg, SC).total_cycles
        adve = adve_hill_sc(seg, ownership_fraction=0.8).total_cycles
        ours = our_techniques(seg, SC).total_cycles
        assert (conv - adve) < (conv - ours) / 3

    def test_adve_hill_ownership_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            adve_hill_sc(example1_segment(), ownership_fraction=0.0)

    def test_adve_hill_full_fraction_equals_conventional(self):
        seg = example1_segment()
        assert (adve_hill_sc(seg, ownership_fraction=1.0).total_cycles
                == conventional(seg, SC).total_cycles)

    def test_stenstrom_pipelines_but_loses_caches(self):
        miss_bound = pointer_chase_segment(length=4)         # all misses
        cached = pointer_chase_segment(length=4, hit_fraction=1.0)
        assert (stenstrom_nst(miss_bound).total_cycles
                == stenstrom_nst(cached).total_cycles), \
            "NST cannot exploit locality"
        assert (our_techniques(cached, SC).total_cycles
                < stenstrom_nst(cached).total_cycles / 10)

    def test_our_techniques_dominate_on_examples(self):
        for seg in (example1_segment(), example2_segment()):
            ours = our_techniques(seg, SC).total_cycles
            for res in compare_schemes(seg):
                assert ours <= res.total_cycles

    def test_compare_schemes_includes_all_five(self):
        names = {r.scheme for r in compare_schemes(example1_segment())}
        assert names == {"conventional", "binding-prefetch", "adve-hill-sc",
                         "stenstrom-nst", "prefetch+speculation"}

    def test_custom_timing_config_respected(self):
        cfg = TimingConfig(miss_latency=10)
        assert conventional(example1_segment(), SC, cfg).total_cycles == 31


class TestTables:
    def test_add_row_validates_width(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_aligns_and_includes_notes(self):
        t = Table("Title", ["col", "value"])
        t.add_row("x", 1).add_note("hello")
        text = t.render()
        assert "Title" in text and "hello" in text and "col" in text

    def test_cell_and_column_access(self):
        t = Table("t", ["a", "b"]).add_row(1, 2).add_row(3, 4)
        assert t.cell(1, "b") == 4
        assert t.column_values("a") == [1, 3]

    def test_float_formatting(self):
        t = Table("t", ["x"]).add_row(1.23456)
        assert "1.23" in t.render()

    def test_none_renders_as_dash(self):
        t = Table("t", ["x"]).add_row(None)
        assert "-" in t.render()

    def test_bar_chart_scales(self):
        chart = bar_chart("c", {"a": 10, "b": 5}, width=10)
        lines = chart.splitlines()
        assert lines[2].count("#") == 10
        assert lines[3].count("#") == 5

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart("c", {})

    def test_series_chart_renders_all_series(self):
        text = series_chart("s", [1, 2], {"a": [10, 20], "b": [30, 40]})
        assert "30" in text and "20" in text

    def test_speedup_table(self):
        t = speedup_table("s", {"x": 100.0}, {"x": 50.0})
        assert t.cell(0, "speedup") == 2.0


class TestExperimentTables:
    def test_litmus_table_has_all_models(self):
        t = litmus_outcome_table()
        assert list(t.columns[1:]) == ["SC", "PC", "WC", "RC"]
        assert len(t.rows) == 5

    def test_example_table_analytical_matches_paper_columns(self):
        t = example_cycle_table("example1")
        sc_row = dict(zip(t.columns, t.rows[0]))
        assert sc_row["baseline"] == 301
        assert sc_row["prefetch"] == 103

    def test_example_table_rejects_unknown_example(self):
        with pytest.raises(ValueError):
            example_cycle_table("example99")

    def test_equalization_gaps_close(self):
        t = equalization_table()
        for row in t.rows:
            assert row[-1] <= row[3] + 1e-9  # gap' <= gap

    def test_latency_sweep_monotone_baselines(self):
        t = latency_sweep_table(latencies=(20, 100))
        sc = t.column_values("SC base")
        assert sc[0] < sc[1]

    def test_related_work_table_schemes_present(self):
        t = related_work_table()
        schemes = t.column_values("scheme")
        assert "stenstrom-nst" in schemes and "prefetch+speculation" in schemes

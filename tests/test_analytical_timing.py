"""The analytical timing model must reproduce every number in the
paper's Sections 3.3 and 4.1 — this is experiment E2/E3's core check."""

import pytest

from repro.consistency import PC, RC, SC, WC
from repro.consistency.access_class import (
    ACQUIRE,
    PLAIN_LOAD,
    PLAIN_STORE,
    RELEASE,
)
from repro.core.timing import (
    AccessSpec,
    AnalyticalTimingModel,
    TimingConfig,
    compare_configurations,
)
from repro.sim.errors import ConfigurationError, SimulationError
from repro.workloads.paper_examples import (
    PAPER_CYCLE_COUNTS,
    example1_segment,
    example2_segment,
    figure5_segment,
)

ENGINE = AnalyticalTimingModel()


class TestExample1:
    """Producer: lock L; write A; write B; unlock L (Section 3.3)."""

    def total(self, model, **tech):
        return ENGINE.schedule(example1_segment(), model, **tech).total_cycles

    def test_sc_baseline_301(self):
        assert self.total(SC) == 301

    def test_rc_baseline_202(self):
        assert self.total(RC) == 202

    def test_sc_prefetch_103(self):
        assert self.total(SC, prefetch=True) == 103

    def test_rc_prefetch_103(self):
        assert self.total(RC, prefetch=True) == 103

    def test_prefetch_equalizes_models(self):
        """'prefetching boosts the performance of both SC and RC and
        also equalizes the performance of the two models.'"""
        assert self.total(SC, prefetch=True) == self.total(RC, prefetch=True)

    def test_speculation_alone_does_not_help_stores(self):
        # Example 1 is store-bound; speculative loads only speed the lock.
        assert self.total(SC, speculation=True) > self.total(SC, prefetch=True)


class TestExample2:
    """Consumer: lock L; read C; read D(hit); read E[D]; unlock (3.3/4.1)."""

    def total(self, model, **tech):
        return ENGINE.schedule(example2_segment(), model, **tech).total_cycles

    def test_sc_baseline_302(self):
        assert self.total(SC) == 302

    def test_rc_baseline_203(self):
        assert self.total(RC) == 203

    def test_sc_prefetch_203(self):
        assert self.total(SC, prefetch=True) == 203

    def test_rc_prefetch_202(self):
        assert self.total(RC, prefetch=True) == 202

    def test_sc_speculation_104(self):
        """'both SC and RC complete the accesses in 104 cycles.'"""
        assert self.total(SC, prefetch=True, speculation=True) == 104

    def test_rc_speculation_104(self):
        assert self.total(RC, prefetch=True, speculation=True) == 104

    def test_speculation_without_prefetch_also_104(self):
        # Example 2 has no delayed stores, so prefetch adds nothing
        # once loads speculate.
        assert self.total(SC, speculation=True) == 104

    def test_prefetch_fails_on_dependent_load(self):
        """'prefetching fails to remedy the cases where out-of-order
        consumption of return values is important' — read D's value is
        not consumable early, so E[D] stays serialized."""
        res = ENGINE.schedule(example2_segment(), SC, prefetch=True)
        read_d = res.timing("read D")
        read_e = res.timing("read E[D]")
        assert read_e.issue > read_d.complete
        assert res.total_cycles > 110  # far from the speculative 104

    def test_speculative_loads_flagged_in_schedule(self):
        res = ENGINE.schedule(example2_segment(), SC, speculation=True)
        assert res.timing("read C").speculative
        assert not res.timing("unlock L").speculative


class TestPaperTable:
    """Every (example, model, technique) number from the paper."""

    @pytest.mark.parametrize(
        "example,model,technique,expected",
        [(e, m, t, v) for (e, m, t), v in PAPER_CYCLE_COUNTS.items()],
        ids=[f"{e}-{m}-{t}" for (e, m, t) in PAPER_CYCLE_COUNTS],
    )
    def test_matches_paper(self, example, model, technique, expected):
        segment = example1_segment() if example == "example1" else example2_segment()
        table = compare_configurations(segment, [SC, RC])
        assert table[(model, technique)] == expected


class TestIntermediateModels:
    """PC and WC must land between SC and RC."""

    @pytest.mark.parametrize("segment_fn", [example1_segment, example2_segment],
                             ids=["ex1", "ex2"])
    def test_baseline_ordering(self, segment_fn):
        seg = segment_fn()
        totals = {m.name: ENGINE.schedule(seg, m).total_cycles
                  for m in (SC, PC, WC, RC)}
        assert totals["SC"] >= totals["PC"] >= totals["WC"] >= totals["RC"]

    def test_pc_helps_example1(self):
        # PC lets the read-based lock... actually Example 1 is all stores
        # after the lock; PC keeps W->W so it behaves like SC here.
        seg = example1_segment()
        assert ENGINE.schedule(seg, PC).total_cycles == 301

    def test_wc_example1_matches_rc(self):
        # No accesses after the release, so WC == RC on Example 1.
        seg = example1_segment()
        assert ENGINE.schedule(seg, WC).total_cycles == 202


class TestFigure5Segment:
    def test_speculation_overlaps_everything(self):
        res = ENGINE.schedule(figure5_segment(), SC,
                              prefetch=True, speculation=True)
        # loads A, D, E[D] all issue before the stores complete
        assert res.timing("read D").issue < res.timing("write B").complete
        assert res.total_cycles <= 110

    def test_baseline_sc_serializes(self):
        res = ENGINE.schedule(figure5_segment(), SC)
        assert res.total_cycles == 100 + 100 + 100 + 1 + 100  # 401


class TestEngineValidation:
    def test_duplicate_labels_rejected(self):
        seg = [AccessSpec("x", PLAIN_LOAD), AccessSpec("x", PLAIN_LOAD)]
        with pytest.raises(ConfigurationError):
            ENGINE.schedule(seg, SC)

    def test_forward_dependency_rejected(self):
        seg = [AccessSpec("a", PLAIN_LOAD, deps=("b",)),
               AccessSpec("b", PLAIN_LOAD)]
        with pytest.raises(ConfigurationError):
            ENGINE.schedule(seg, SC)

    def test_bad_latency_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(hit_latency=2, miss_latency=1)

    def test_empty_segment(self):
        with pytest.raises(ValueError):
            ENGINE.schedule([], SC)

    def test_single_hit_access(self):
        res = ENGINE.schedule([AccessSpec("a", PLAIN_LOAD, hit=True)], SC)
        assert res.total_cycles == 1

    def test_single_miss_access(self):
        res = ENGINE.schedule([AccessSpec("a", PLAIN_LOAD)], SC)
        assert res.total_cycles == 100

    def test_custom_latencies(self):
        engine = AnalyticalTimingModel(TimingConfig(hit_latency=1, miss_latency=10))
        res = engine.schedule(example1_segment(), SC)
        assert res.total_cycles == 31  # 10+10+10+1

    def test_describe_contains_totals(self):
        res = ENGINE.schedule(example1_segment(), SC, prefetch=True)
        text = res.describe()
        assert "103 cycles" in text and "prefetch" in text

    def test_timing_lookup_unknown_label(self):
        res = ENGINE.schedule(example1_segment(), SC)
        with pytest.raises(KeyError):
            res.timing("nope")

"""Extended litmus tests: IRIW, WRC, SB+sync, RCpc vs RCsc."""

import pytest

from repro.consistency import (
    PC,
    RC,
    RCSC,
    SC,
    WC,
    iriw,
    sb_with_sync,
    write_to_read_causality,
)


class TestIriw:
    """Write atomicity (Section 2's assumption) makes IRIW safe in
    every model: the two readers can never disagree on the order of
    the independent writes."""

    @pytest.mark.parametrize("model", [SC, PC, WC, RC, RCSC],
                             ids=lambda m: m.name)
    def test_readers_never_disagree(self, model):
        t = iriw()
        # r0=1,r1=0 means T2 saw x before y; r2=1,r3=0 means T3 saw y
        # before x — disagreement about the global write order
        assert t.forbids(model, r0=1, r1=0, r2=1, r3=0)

    def test_agreeing_interleavings_allowed(self):
        t = iriw()
        assert t.allows(SC, r0=1, r1=1, r2=1, r3=1)
        assert t.allows(RC, r0=0, r1=0, r2=0, r3=0)


class TestWrc:
    """Causality through a republished value."""

    @pytest.mark.parametrize("model", [SC, PC, WC, RC, RCSC],
                             ids=lambda m: m.name)
    def test_labelled_wrc_is_causal(self, model):
        t = write_to_read_causality()
        # T1 saw x=1 and released y=1; T2 acquired y=1 -> must see x=1
        assert t.forbids(model, r0=1, r1=1, r2=0)

    def test_unordered_observations_allowed(self):
        t = write_to_read_causality()
        assert t.allows(RC, r0=0, r1=0, r2=0)
        assert t.allows(RC, r0=1, r1=1, r2=1)


class TestSbWithSync:
    """The RCpc vs RCsc distinction (paper, footnote 1)."""

    def test_sc_and_wc_forbid_dekker_outcome(self):
        t = sb_with_sync()
        assert t.forbids(SC, r0=0, r1=0)
        assert t.forbids(WC, r0=0, r1=0)

    def test_rcpc_allows_dekker_outcome(self):
        """RCpc leaves release->acquire unordered: fully-labelled
        Dekker can still observe (0, 0)."""
        assert sb_with_sync().allows(RC, r0=0, r1=0)

    def test_rcsc_forbids_dekker_outcome(self):
        """RCsc orders special accesses sequentially: (0, 0) vanishes."""
        assert sb_with_sync().forbids(RCSC, r0=0, r1=0)

    def test_pc_allows_it_too(self):
        # under PC the W->R relaxation applies to sync accesses as well
        assert sb_with_sync().allows(PC, r0=0, r1=0)

"""Tests for the SC-violation detector (the Section 6 extension)."""

import pytest

from repro.consistency import RC, SC
from repro.core import ScViolationDetector
from repro.cpu import ProcessorConfig
from repro.isa import ProgramBuilder
from repro.memory.types import SnoopKind
from repro.sim import StatsRegistry
from repro.system import run_workload


class TestDetectorUnit:
    def make(self):
        return ScViolationDetector(StatsRegistry())

    def test_performed_in_window_entry_flags_on_snoop(self):
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False, tag="early")
        d.monitor(1, 0x80, 32, is_store=False)
        # seq 1 performs while seq 0 is still outstanding: out of SC order
        d.mark_performed(1)
        d.on_snoop(SnoopKind.INVALIDATION, 32)
        assert d.flagged
        assert d.violations[0].seq == 1

    def test_unperformed_entry_does_not_flag(self):
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False)
        d.on_snoop(SnoopKind.INVALIDATION, 16)
        assert not d.flagged

    def test_window_retires_in_order(self):
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False)
        d.monitor(1, 0x80, 32, is_store=False)
        d.mark_performed(0)
        d.mark_performed(1)
        # both windows closed: a later snoop finds nothing
        d.on_snoop(SnoopKind.INVALIDATION, 32)
        assert not d.flagged

    def test_discard_removes_entry(self):
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False)
        d.monitor(1, 0x80, 32, is_store=False)
        d.mark_performed(1)
        d.discard(1)
        d.on_snoop(SnoopKind.INVALIDATION, 32)
        assert not d.flagged

    def test_report_text(self):
        d = self.make()
        assert "no potential SC violations" in d.report()
        d.monitor(0, 0x40, 16, is_store=False)
        d.monitor(1, 0x80, 32, is_store=False, tag="racy load")
        d.mark_performed(1)
        d.on_snoop(SnoopKind.UPDATE, 32)
        assert "racy load" in d.report()

    def test_recording_cap(self):
        d = ScViolationDetector(StatsRegistry(), max_recorded=2)
        d.monitor(0, 0, 0, is_store=False)
        for seq in range(1, 6):
            d.monitor(seq, 4 * seq, seq, is_store=False)
            d.mark_performed(seq)
        for seq in range(1, 6):
            d.on_snoop(SnoopKind.INVALIDATION, seq)
        assert d.stat_violations.value == 5
        assert len(d.violations) == 2
        assert "more" in d.report()

    def test_recording_cap_reports_exact_overflow_count(self):
        d = ScViolationDetector(StatsRegistry(), max_recorded=1)
        d.monitor(0, 0, 0, is_store=False)
        for seq in range(1, 5):
            d.monitor(seq, 4 * seq, 7, is_store=False)
            d.mark_performed(seq)
        d.on_snoop(SnoopKind.INVALIDATION, 7)
        assert d.stat_violations.value == 4
        assert len(d.violations) == 1
        assert "... and 3 more" in d.report()

    def test_discard_after_mark_performed_unindexes(self):
        """A performed-then-squashed access must vanish from the line
        index too, while other entries on the same line keep flagging."""
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False)       # keeps windows open
        d.monitor(1, 0x80, 32, is_store=False, tag="squashed")
        d.monitor(2, 0x84, 32, is_store=False, tag="survivor")
        d.mark_performed(1)
        d.mark_performed(2)
        d.discard(1)
        d.on_snoop(SnoopKind.INVALIDATION, 32)
        assert [v.seq for v in d.violations] == [2]

    def test_snoop_on_other_line_never_flags(self):
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False)
        d.monitor(1, 0x80, 32, is_store=False)
        d.mark_performed(1)
        d.on_snoop(SnoopKind.INVALIDATION, 33)
        assert not d.flagged

    def test_window_retirement_prunes_line_index(self):
        """Once the window closes, a snoop on the same line must find
        nothing — including through the per-line index."""
        d = self.make()
        for seq in range(4):
            d.monitor(seq, 0x40 + 4 * seq, 16, is_store=False)
        for seq in range(4):
            d.mark_performed(seq)
        assert not d._entries and not d._by_line
        d.on_snoop(SnoopKind.INVALIDATION, 16)
        assert not d.flagged

    def test_monitor_same_seq_twice_is_idempotent(self):
        d = self.make()
        d.monitor(0, 0x40, 16, is_store=False)
        d.monitor(1, 0x80, 32, is_store=False)
        d.monitor(1, 0x80, 32, is_store=False)
        d.mark_performed(1)
        d.on_snoop(SnoopKind.INVALIDATION, 32)
        assert d.stat_violations.value == 1


class TestDetectorIntegration:
    def detector_stats(self, result, cpu=0):
        return result.counter(f"cpu{cpu}/sc_detector/potential_violations")

    def test_race_free_single_cpu_never_flags(self):
        p = (ProgramBuilder()
             .store_imm(1, addr=0x40)
             .load("r1", addr=0x80)
             .load("r2", addr=0x40)
             .build())
        result = run_workload(
            [p], model=RC, speculation=True, prefetch=True,
            processor=ProcessorConfig(enable_sc_detection=True),
        )
        assert self.detector_stats(result) == 0

    def test_racing_remote_write_is_flagged_under_rc(self):
        """Under RC an early-performed load hit by a remote write is
        exactly the situation where the execution may not be SC."""
        from repro.memory import LatencyConfig
        from repro.system.machine import MachineConfig, Multiprocessor

        # acquire pending; data load performs early (RC allows it)
        p = (ProgramBuilder()
             .lock_optimistic(addr=0x10, tag="acq")
             .load("r1", addr=0x40, tag="data")
             .build())
        config = MachineConfig(
            model=RC, enable_speculation=True,
            latencies=LatencyConfig.from_miss_latency(100),
            processor=ProcessorConfig(enable_sc_detection=True),
        )
        machine = Multiprocessor([p], config, extra_agents=1)
        machine.init_memory({0x10: 0, 0x40: 1})
        machine.warm(0, 0x40, exclusive=False)  # the load hits, performs early
        machine.agents[0].write_at(3, 0x40, 2)  # remote write in the window
        machine.run(max_cycles=200_000)
        stats = machine.sim.stats
        assert stats.counter("cpu0/sc_detector/potential_violations").value >= 1

    def test_well_synchronized_handoff_not_flagged(self):
        """A properly labelled producer/consumer hand-off is data-race-
        free; the monitor should stay silent on both processors."""
        producer = (ProgramBuilder()
                    .store_imm(42, addr=0x40, tag="data")
                    .release_store_imm(1, addr=0x80, tag="flag")
                    .build())
        consumer = (ProgramBuilder()
                    .spin_until_set(addr=0x80, tag="wait")
                    .load("r5", addr=0x40, tag="read data")
                    .build())
        result = run_workload(
            [producer, consumer], model=RC, speculation=True,
            processor=ProcessorConfig(enable_sc_detection=True),
            max_cycles=500_000,
        )
        assert result.machine.reg(1, "r5") == 42
        assert self.detector_stats(result, 0) == 0
        # the consumer's spin loop may conservatively flag its own
        # re-polls if the flag line ping-pongs; with a single writer it
        # should not
        assert self.detector_stats(result, 1) == 0

    def test_detection_does_not_change_results(self):
        p = (ProgramBuilder()
             .store_imm(7, addr=0x40)
             .load("r1", addr=0x40)
             .build())
        plain = run_workload([p], model=RC, speculation=True)
        monitored = run_workload(
            [p], model=RC, speculation=True,
            processor=ProcessorConfig(enable_sc_detection=True))
        assert plain.machine.reg(0, "r1") == monitored.machine.reg(0, "r1") == 7
        assert plain.cycles == monitored.cycles

"""Unit tests for the speculative-load buffer (Section 4.2, Appendix A)."""

import pytest

from repro.core.speculation import (
    Correction,
    CorrectionKind,
    SlbEntry,
    SpeculativeLoadBuffer,
)
from repro.memory.types import SnoopKind
from repro.sim import StatsRegistry


def make_slb(size=8):
    return SpeculativeLoadBuffer(size, StatsRegistry())


def entry(seq, line=1, acq=False, tags=(), done=False, is_rmw=False):
    return SlbEntry(seq=seq, addr=line * 4, line_addr=line, acq=acq,
                    store_tags=set(tags), done=done, is_rmw=is_rmw,
                    tag=f"ld{seq}")


class TestInsertionAndRetirement:
    def test_fifo_retirement_conditions(self):
        slb = make_slb()
        slb.insert(entry(1, acq=True, done=False))
        assert slb.retire_ready() == []     # acq and not done
        slb.mark_done(1)
        assert slb.retire_ready() == [1]

    def test_store_tag_blocks_retirement(self):
        slb = make_slb()
        slb.insert(entry(1, tags=[0], done=True, acq=True))
        assert slb.retire_ready() == []
        slb.store_performed(0)
        assert slb.retire_ready() == [1]

    def test_non_acquire_entry_retires_without_done(self):
        """Under RC an ordinary load leaves the buffer as soon as no
        store tags remain, even while still in flight."""
        slb = make_slb()
        slb.insert(entry(1, acq=False, done=False))
        assert slb.retire_ready() == [1]

    def test_fifo_blocks_younger_behind_older(self):
        slb = make_slb()
        slb.insert(entry(1, acq=True, done=False))   # pending acquire
        slb.insert(entry(2, acq=False, done=True))   # retirable by itself
        assert slb.retire_ready() == []              # blocked behind head
        slb.mark_done(1)
        assert slb.retire_ready() == [1, 2]

    def test_program_order_enforced(self):
        slb = make_slb()
        slb.insert(entry(5))
        with pytest.raises(AssertionError):
            slb.insert(entry(3))

    def test_full_and_cleared(self):
        slb = make_slb(size=2)
        slb.insert(entry(1, acq=True))
        slb.insert(entry(2, acq=True))
        assert slb.full
        assert not slb.is_cleared(1)
        assert slb.is_cleared(99)

    def test_squash_removes_entries(self):
        slb = make_slb()
        slb.insert(entry(1, acq=True))
        slb.insert(entry(2, acq=True))
        slb.squash({2})
        assert slb.is_cleared(2)
        assert not slb.is_cleared(1)


class TestDetection:
    def test_no_match_no_corrections(self):
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True))
        assert slb.on_snoop(SnoopKind.INVALIDATION, line_addr=9) == []

    def test_done_load_squashes_from_itself(self):
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True, done=True, tags=[0]))
        corrections = slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert corrections == [Correction(CorrectionKind.SQUASH_FROM, 1)]

    def test_inflight_load_reissues_only(self):
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True, done=False))
        corrections = slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert corrections == [Correction(CorrectionKind.REISSUE, 1)]

    @pytest.mark.parametrize("kind", list(SnoopKind))
    def test_all_snoop_kinds_treated_identically(self, kind):
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True, done=True, tags=[0]))
        corrections = slb.on_snoop(kind, 1)
        assert corrections and corrections[0].kind is CorrectionKind.SQUASH_FROM

    def test_head_entry_ignored_when_retirable(self):
        """Footnote 4: a head entry whose constraints are satisfied
        would have been allowed to perform — no correction needed."""
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True, done=True))  # retirable
        assert slb.on_snoop(SnoopKind.INVALIDATION, 1) == []

    def test_non_head_retirable_entry_still_squashes(self):
        slb = make_slb()
        slb.insert(entry(1, line=5, acq=True, done=False))  # head, other line
        slb.insert(entry(2, line=1, acq=True, done=True))   # retirable but not head
        corrections = slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert corrections == [Correction(CorrectionKind.SQUASH_FROM, 2)]

    def test_multiple_matches_reissue_then_squash(self):
        """Footnote 5: earlier in-flight loads reissue; the first done
        match squashes (discarding the rest)."""
        slb = make_slb()
        slb.insert(entry(1, line=9, acq=True, done=False))  # head, other line
        slb.insert(entry(2, line=1, acq=True, done=False, tags=[0]))
        slb.insert(entry(3, line=1, acq=True, done=True, tags=[0]))
        slb.insert(entry(4, line=1, acq=True, done=True, tags=[0]))
        corrections = slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert corrections == [
            Correction(CorrectionKind.REISSUE, 2),
            Correction(CorrectionKind.SQUASH_FROM, 3),
        ]

    def test_rmw_not_issued_squashes_from_rmw(self):
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True, is_rmw=True, tags=[1]))
        corrections = slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert corrections == [Correction(CorrectionKind.SQUASH_FROM, 1)]

    def test_rmw_issued_squashes_after_rmw(self):
        slb = make_slb()
        slb.insert(entry(1, line=1, acq=True, is_rmw=True, tags=[1]))
        slb.mark_rmw_issued(1)
        corrections = slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert corrections == [Correction(CorrectionKind.SQUASH_AFTER, 1)]

    def test_stats_track_squashes_and_reissues(self):
        slb = make_slb()
        slb.insert(entry(1, line=9, acq=True))
        slb.insert(entry(2, line=1, acq=True, done=False))
        slb.on_snoop(SnoopKind.INVALIDATION, 1)
        assert slb.stat_reissues.value == 1
        slb.insert(entry(3, line=2, acq=True, done=True, tags=[0]))
        slb.on_snoop(SnoopKind.UPDATE, 2)
        assert slb.stat_squashes.value == 1

    def test_describe_renders_fields(self):
        slb = make_slb()
        slb.insert(entry(1, acq=True, tags=[7]))
        text = slb.describe()
        assert "acq=1" in text and "7" in text

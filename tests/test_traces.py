"""Tests for the trace-driven frontend."""

import io

import pytest

from repro.consistency import RC, SC
from repro.core import AnalyticalTimingModel
from repro.isa import ProgramBuilder
from repro.sim.errors import SimulationError
from repro.workloads import (
    AccessTrace,
    DirectMappedFilter,
    TraceRecord,
    example2_program,
    trace_from_program,
    trace_to_segment,
)


class TestTraceRecord:
    def test_roundtrip_plain(self):
        r = TraceRecord("R", 0x100)
        assert TraceRecord.from_line(r.to_line()) == r

    def test_roundtrip_flags_and_dep(self):
        r = TraceRecord("U", 0x40, acquire=True, release=True, depends_on=3)
        assert TraceRecord.from_line(r.to_line()) == r

    def test_rejects_bad_op(self):
        with pytest.raises(SimulationError):
            TraceRecord("X", 0)

    def test_rejects_malformed_line(self):
        with pytest.raises(SimulationError):
            TraceRecord.from_line("R 0x10")
        with pytest.raises(SimulationError):
            TraceRecord.from_line("R 0x10 - junk")

    def test_access_class(self):
        k = TraceRecord("U", 0, acquire=True).access_class()
        assert k.is_load and k.is_store and k.acquire


class TestAccessTrace:
    def test_append_rejects_future_dependence(self):
        t = AccessTrace("t")
        with pytest.raises(SimulationError):
            t.append(TraceRecord("R", 0, depends_on=0))

    def test_dump_and_load_roundtrip(self):
        t = AccessTrace("mytrace")
        t.append(TraceRecord("W", 0x10))
        t.append(TraceRecord("R", 0x10, acquire=True, depends_on=0))
        loaded = AccessTrace.load(t.dumps())
        assert loaded.name == "mytrace"
        assert loaded.records == t.records

    def test_load_skips_comments_and_blanks(self):
        text = "# comment\n\nR 0x10 -\n"
        assert len(AccessTrace.load(text)) == 1

    def test_stats(self):
        t = AccessTrace("t")
        t.append(TraceRecord("W", 0, release=True))
        t.append(TraceRecord("R", 4, acquire=True))
        t.append(TraceRecord("U", 8))
        s = t.stats()
        assert s["accesses"] == 3
        assert s["acquires"] == 1 and s["releases"] == 1 and s["rmws"] == 1


class TestTraceCapture:
    def test_captures_example2_accesses(self):
        wl = example2_program()
        trace = trace_from_program(wl.program, wl.initial_memory)
        ops = [r.op for r in trace]
        assert ops == ["U", "R", "R", "R", "W"]  # lock, C, D, E[D], unlock
        assert trace.records[0].acquire
        assert trace.records[-1].release

    def test_captures_address_dependence(self):
        wl = example2_program()
        trace = trace_from_program(wl.program, wl.initial_memory)
        # read E[D] (index 3) depends on read D (index 2)
        assert trace.records[3].depends_on == 2

    def test_addresses_resolved_through_registers(self):
        p = (ProgramBuilder()
             .load("r1", addr=0x10)          # r1 = 3
             .load("r2", base="r1", addr=0x20)  # -> 0x23
             .build())
        trace = trace_from_program(p, {0x10: 3})
        assert trace.records[1].addr == 0x23
        assert trace.records[1].depends_on == 0

    def test_loops_unrolled_into_trace(self):
        p = (ProgramBuilder()
             .mov_imm("r2", 3)
             .label("loop")
             .load("r1", addr=0x40)
             .alu("sub", "r2", "r2", imm=1)
             .branch_nonzero("r2", "loop")
             .build())
        trace = trace_from_program(p)
        assert len(trace) == 3

    def test_dependence_propagates_through_alu(self):
        p = (ProgramBuilder()
             .load("r1", addr=0x10)
             .add_imm("r2", "r1", 4)
             .load("r3", base="r2", addr=0)
             .build())
        trace = trace_from_program(p, {0x10: 8})
        assert trace.records[1].addr == 12
        assert trace.records[1].depends_on == 0


class TestTraceDrivenAnalysis:
    def test_direct_mapped_filter(self):
        f = DirectMappedFilter(num_sets=2, line_size=4)
        assert not f.access(0x0)     # cold miss
        assert f.access(0x1)         # same line
        assert not f.access(0x8)     # maps to set 0... line 2 -> set 0
        assert not f.access(0x0)     # evicted

    def test_trace_to_segment_preserves_structure(self):
        wl = example2_program()
        trace = trace_from_program(wl.program, wl.initial_memory)
        segment = trace_to_segment(trace)
        assert len(segment) == 5
        assert segment[3].deps == ("t2",)
        assert segment[0].klass.acquire

    def test_trace_driven_schedule_matches_paper_shape(self):
        """Capture example2, re-classify hits with a warm filter seeded
        so D hits (as the paper declares), and check the schedule."""
        wl = example2_program()
        trace = trace_from_program(wl.program, wl.initial_memory)
        f = DirectMappedFilter()
        f.access(80)  # warm D's line
        segment = trace_to_segment(trace, hit_filter=f)
        engine = AnalyticalTimingModel()
        sc = engine.schedule(segment, SC).total_cycles
        spec = engine.schedule(segment, SC, prefetch=True,
                               speculation=True).total_cycles
        # unlock is classified by the filter rather than declared hit,
        # so totals differ slightly from the paper's 302/104 — but the
        # ~3x structure must hold
        assert sc > 2.5 * spec

    def test_trace_driven_rc_faster_than_sc(self):
        wl = example2_program()
        trace = trace_from_program(wl.program, wl.initial_memory)
        segment = trace_to_segment(trace)
        engine = AnalyticalTimingModel()
        assert (engine.schedule(segment, RC).total_cycles
                <= engine.schedule(segment, SC).total_cycles)

"""The delay-arc matrices must transcribe Figure 1 exactly."""

import pytest

from repro.analysis import delay_arc_matrix
from repro.consistency import PC, RC, RCSC, SC, WC

CLASSES = ["load", "store", "acquire", "release"]


def matrix_of(model):
    table = delay_arc_matrix(model)
    out = {}
    for row in table.rows:
        earlier = row[0]
        for later, cell in zip(CLASSES, row[1:]):
            out[(earlier, later)] = cell == "wait"
    return out


class TestFigure1Matrices:
    def test_sc_all_sixteen_arcs(self):
        m = matrix_of(SC)
        assert all(m.values()) and len(m) == 16

    def test_pc_relaxes_exactly_store_to_load(self):
        m = matrix_of(PC)
        relaxed = {pair for pair, wait in m.items() if not wait}
        # pure-store before pure-load pairs (acquire is a load; release
        # is a store — the figure orders accesses by their kind)
        assert relaxed == {("store", "load"), ("store", "acquire"),
                           ("release", "load"), ("release", "acquire")}

    def test_wc_data_block_is_free(self):
        m = matrix_of(WC)
        for a in ("load", "store"):
            for b in ("load", "store"):
                assert not m[(a, b)], (a, b)
        # everything involving a sync access waits
        for other in CLASSES:
            assert m[("acquire", other)]
            assert m[(other, "release")]

    def test_rc_matches_figure_bottom_right(self):
        m = matrix_of(RC)
        # exactly: acquire row all wait, release column all wait
        for pair, wait in m.items():
            expected = pair[0] == "acquire" or pair[1] == "release"
            assert wait == expected, pair

    def test_rcsc_adds_release_acquire(self):
        m_pc, m_sc = matrix_of(RC), matrix_of(RCSC)
        assert not m_pc[("release", "acquire")]
        assert m_sc[("release", "acquire")]
        # and that is the *only* difference
        diffs = {p for p in m_pc if m_pc[p] != m_sc[p]}
        assert diffs == {("release", "acquire")}

"""Cycle-accounting invariants and golden breakdown pins.

The accounting contract is *total and exclusive* blame: every cycle of
every CPU lands in exactly one :class:`StallCause` counter, so the
per-CPU cause counters sum exactly to the run's cycle count — which in
turn is pinned by ``DETAILED_GOLDEN`` in :mod:`test_golden_numbers`.
These tests check the invariant over the full model x technique matrix
of both paper examples, the multiprocessor case, and the rollback
accounting around Figure 5's speculative-load violation.
"""

import pytest

from repro.analysis.experiments import TECHNIQUES
from repro.consistency import get_model
from repro.obs.accounting import (
    CAUSES,
    PAPER_CAUSES,
    CycleBreakdown,
    StallCause,
    breakdown_from_stats,
    render_breakdown,
)
from repro.sim.stats import StatsRegistry
from repro.system import run_workload
from repro.workloads.figure5 import run_figure5
from repro.workloads.paper_examples import (
    example1_program,
    example2_program,
)
from tests.test_golden_numbers import DETAILED_GOLDEN, MISS_LATENCY, MODELS

EXAMPLES = {"example1": example1_program, "example2": example2_program}


def run_example(example, model, pf, spec):
    wl = EXAMPLES[example]()
    return run_workload(
        [wl.program], model=model, prefetch=pf, speculation=spec,
        miss_latency=MISS_LATENCY, initial_memory=wl.initial_memory,
        warm_lines=wl.warm_lines)


@pytest.mark.parametrize("example,model",
                         [(e, m) for e in EXAMPLES for m in MODELS],
                         ids=[f"{e}-{m.name}" for e in EXAMPLES
                              for m in MODELS])
def test_breakdown_sums_to_golden_total(example, model):
    """Sum of cause counters == run cycles == the golden pin, for every
    technique combination (the ISSUE's acceptance criterion)."""
    golden = DETAILED_GOLDEN[(example, model.name)]
    for expected, (pf, spec) in zip(golden, TECHNIQUES.values()):
        result = run_example(example, model, pf, spec)
        assert result.cycles == expected
        bd = result.breakdowns()[0]
        assert bd.total == result.cycles
        assert sum(bd.get(c) for c in CAUSES) == expected


def test_sc_baseline_blames_the_right_causes():
    """Example 2 under SC: the lock RMW is an acquire stall, the
    serialized load misses are read stalls, and they dominate."""
    result = run_example("example2", get_model("SC"), False, False)
    bd = result.breakdowns()[0]
    assert bd.get(StallCause.ACQUIRE) >= MISS_LATENCY  # the lock miss
    assert bd.get(StallCause.READ) >= 2 * MISS_LATENCY  # read C + read E[D]
    assert bd.get(StallCause.BUSY) < 10
    assert bd.get(StallCause.ROLLBACK) == 0


def test_speculation_converts_read_stall_to_busy():
    sc = get_model("SC")
    base = run_example("example2", sc, False, False).breakdowns()[0]
    spec = run_example("example2", sc, False, True).breakdowns()[0]
    assert spec.get(StallCause.READ) < 0.05 * base.get(StallCause.READ)
    # acquire stall is untouched: speculation does not reorder the lock
    assert abs(spec.get(StallCause.ACQUIRE) - base.get(StallCause.ACQUIRE)) <= 2


def test_multiprocessor_every_cpu_sums_to_total():
    """With two CPUs, each CPU's breakdown covers every machine cycle
    (the finished one accumulates write-drain/idle time)."""
    wl0 = example1_program()
    wl1 = example2_program()
    result = run_workload(
        [wl0.program, wl1.program], model=get_model("RC"),
        miss_latency=MISS_LATENCY,
        initial_memory={**wl0.initial_memory, **wl1.initial_memory},
        warm_lines=wl1.warm_lines)
    for bd in result.breakdowns():
        assert bd.total == result.cycles
    machine_bd = result.breakdown()
    assert machine_bd.total == 2 * result.cycles
    # at least one CPU finished early and sat idle
    assert machine_bd.get(StallCause.IDLE) > 0


def test_figure5_rollback_is_accounted():
    """The Figure 5 invalidation forces a speculative-load rollback:
    the squash reason and the SLB rollback cause are both recorded."""
    result = run_figure5()
    stats = result.machine.sim.stats
    assert stats.counter(
        "cpu0/squash_reason/speculative_load_violated").value >= 1
    assert stats.counter("cpu0/slb/rollback_cause/inval").value >= 1
    assert stats.histogram("cpu0/squash_depth").count >= 1
    bd = breakdown_from_stats(stats, cpu=0)
    assert bd.total == result.cycles


def test_breakdown_merge_and_normalize():
    counts = {StallCause.BUSY: 10, StallCause.READ: 90}
    bd = CycleBreakdown(dict(counts))
    assert bd.total == 100
    assert bd.fraction(StallCause.READ) == pytest.approx(0.9)
    merged = bd.merged_with(CycleBreakdown({StallCause.READ: 10,
                                            StallCause.IDLE: 5}))
    assert merged.get(StallCause.READ) == 100
    assert merged.total == 115
    norm = bd.normalized(200)
    assert norm[StallCause.READ] == pytest.approx(45.0)
    assert bd.as_dict()["read_stall"] == 90


def test_breakdown_survives_registry_merge():
    """Cross-worker aggregation: merge_from with a prefix, then read
    the breakdown back out — the sweep/benchmark aggregation path."""
    result = run_example("example2", get_model("WC"), True, True)
    master = StatsRegistry()
    master.merge_from(result.stats, prefix="cell0/")
    bd = breakdown_from_stats(master, cpu=0, prefix="cell0/")
    assert bd.counts == result.breakdowns()[0].counts


def test_render_breakdown_is_aligned_text():
    bd = CycleBreakdown({StallCause.BUSY: 3, StallCause.READ: 200})
    text = render_breakdown({"cpu0": bd}, title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "read_stall" in lines[2]
    assert lines[-1].split()[-1] == "203"  # total column


def test_paper_causes_are_a_subset_in_order():
    assert set(PAPER_CAUSES) <= set(CAUSES)
    assert [c for c in CAUSES if c in PAPER_CAUSES] == list(PAPER_CAUSES)

"""Unit tests for the ISA: instructions, registers, programs, assembler."""

import pytest

from repro.isa import (
    Alu,
    Branch,
    Halt,
    Jump,
    Load,
    Nop,
    Program,
    ProgramBuilder,
    RegisterFile,
    Rmw,
    Store,
    assemble,
    destination_register,
    program_from_instructions,
    source_registers,
)
from repro.sim.errors import AssemblerError, IsaError


class TestRegisterFile:
    def test_registers_start_at_zero(self):
        rf = RegisterFile()
        assert rf.read("r5") == 0

    def test_write_and_read(self):
        rf = RegisterFile()
        rf.write("r3", 42)
        assert rf.read("r3") == 42

    def test_r0_is_hardwired_zero(self):
        rf = RegisterFile()
        rf.write("r0", 99)
        assert rf.read("r0") == 0

    def test_unknown_register_rejected(self):
        rf = RegisterFile()
        with pytest.raises(IsaError):
            rf.read("r99")
        with pytest.raises(IsaError):
            rf.write("x1", 0)

    def test_snapshot_roundtrip(self):
        rf = RegisterFile()
        rf.write("r7", 7)
        snap = rf.snapshot()
        rf.write("r7", 0)
        rf.load_snapshot(snap)
        assert rf.read("r7") == 7


class TestInstructionValidation:
    def test_load_validates_registers(self):
        with pytest.raises(IsaError):
            Load(dst="bogus", base="r0", offset=0)

    def test_rmw_rejects_unknown_op(self):
        with pytest.raises(IsaError):
            Rmw(dst="r1", base="r0", offset=0, op="cas")

    def test_alu_rejects_unknown_op(self):
        with pytest.raises(IsaError):
            Alu(op="div", dst="r1", src1="r2", imm=1)

    def test_alu_needs_exactly_one_of_src2_imm(self):
        with pytest.raises(IsaError):
            Alu(op="add", dst="r1", src1="r2")
        with pytest.raises(IsaError):
            Alu(op="add", dst="r1", src1="r2", src2="r3", imm=4)

    def test_alu_rejects_nonpositive_latency(self):
        with pytest.raises(IsaError):
            Alu(op="add", dst="r1", src1="r2", imm=1, latency=0)

    def test_branch_requires_target(self):
        with pytest.raises(IsaError):
            Branch(cond="r1", target="")

    def test_memory_classification(self):
        assert Load(dst="r1").is_memory and Load(dst="r1").is_load
        assert Store(src="r1").is_memory and Store(src="r1").is_store
        assert Rmw(dst="r1").is_memory and Rmw(dst="r1").is_rmw
        assert not Alu(op="mov", dst="r1", src1="r0", imm=0).is_memory

    def test_acquire_release_flags(self):
        assert Load(dst="r1", acquire=True).is_acquire
        assert Store(src="r1", release=True).is_release
        assert Rmw(dst="r1", acquire=True, release=True).is_acquire
        assert not Load(dst="r1").is_acquire


class TestInstructionSemantics:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("and", 6, 3, 2),
            ("or", 4, 1, 5),
            ("xor", 6, 3, 5),
            ("mul", 4, 5, 20),
            ("mov", 0, 9, 9),
            ("seq", 3, 3, 1),
            ("sne", 3, 3, 0),
            ("slt", 2, 3, 1),
            ("sgt", 2, 3, 0),
        ],
    )
    def test_alu_compute(self, op, a, b, expected):
        instr = Alu(op=op, dst="r1", src1="r2", imm=0)
        assert instr.compute(a, b) == expected

    def test_rmw_new_value(self):
        assert Rmw(dst="r1", op="ts").new_value(0, 7) == 1
        assert Rmw(dst="r1", op="swap").new_value(5, 7) == 7
        assert Rmw(dst="r1", op="add").new_value(5, 7) == 12

    def test_branch_outcome(self):
        b = Branch(cond="r1", target="t", when_nonzero=True)
        assert b.outcome(1) and not b.outcome(0)
        bz = Branch(cond="r1", target="t", when_nonzero=False)
        assert bz.outcome(0) and not bz.outcome(1)

    def test_dest_and_source_registers(self):
        assert destination_register(Load(dst="r1", base="r2")) == "r1"
        assert destination_register(Store(src="r1")) is None
        assert source_registers(Store(src="r3", base="r2")) == ("r2", "r3")
        assert source_registers(Branch(cond="r4", target="t")) == ("r4",)
        assert source_registers(Nop()) == ()


class TestProgram:
    def test_program_validates_branch_targets(self):
        with pytest.raises(IsaError):
            Program([Branch(cond="r1", target="nowhere")], labels={})

    def test_program_at_and_bounds(self):
        p = program_from_instructions([Nop()])
        assert isinstance(p.at(0), Nop)
        assert isinstance(p.at(1), Halt)  # appended by build()
        assert p.at(99) is None

    def test_label_resolution(self):
        p = (
            ProgramBuilder()
            .label("top")
            .nop()
            .jump("top")
            .build()
        )
        assert p.target_pc("top") == 0
        with pytest.raises(IsaError):
            p.target_pc("missing")

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder().label("x")
        with pytest.raises(IsaError):
            b.label("x")

    def test_build_appends_halt_once(self):
        p1 = ProgramBuilder().nop().build()
        assert isinstance(p1.instructions[-1], Halt)
        p2 = ProgramBuilder().nop().halt().build()
        assert sum(isinstance(i, Halt) for i in p2.instructions) == 1

    def test_memory_instructions_filter(self):
        p = (
            ProgramBuilder()
            .load("r1", addr=0)
            .mov_imm("r2", 5)
            .store("r2", addr=4)
            .build()
        )
        mems = p.memory_instructions()
        assert len(mems) == 2

    def test_lock_macro_emits_rmw_spin(self):
        p = ProgramBuilder().lock(addr=0x80).build()
        kinds = [type(i).__name__ for i in p.instructions]
        assert "Rmw" in kinds and "Branch" in kinds
        rmw = next(i for i in p.instructions if isinstance(i, Rmw))
        assert rmw.acquire and rmw.op == "ts"
        br = next(i for i in p.instructions if isinstance(i, Branch))
        assert br.predict_taken is False  # predicted to fall through (lock succeeds)

    def test_unlock_macro_is_release_store(self):
        p = ProgramBuilder().unlock(addr=0x80).build()
        st = next(i for i in p.instructions if isinstance(i, Store))
        assert st.release

    def test_lock_optimistic_is_single_acquire_access(self):
        p = ProgramBuilder().lock_optimistic(addr=0x80).build()
        mems = p.memory_instructions()
        assert len(mems) == 1 and mems[0].is_acquire

    def test_describe_mentions_labels(self):
        p = ProgramBuilder().label("loop").nop().jump("loop").build()
        assert "loop:" in p.describe()


class TestAssembler:
    def test_assemble_basic_program(self):
        p = assemble(
            """
            start:
                movi r1, 5
                ld   r2, 0x100
                st   r1, 0x104
                halt
            """
        )
        assert len(p.instructions) == 4
        assert p.target_pc("start") == 0
        assert isinstance(p.instructions[1], Load)

    def test_acquire_release_mnemonics(self):
        p = assemble("ld.acq r1, 0x10\nst.rel r1, 0x10\nhalt")
        assert p.instructions[0].acquire
        assert p.instructions[1].release

    def test_base_offset_memref(self):
        p = assemble("ld r2, 8(r3)\nhalt")
        ld = p.instructions[0]
        assert ld.base == "r3" and ld.offset == 8

    def test_rmw_with_flags(self):
        p = assemble("rmw.ts r1, 0x20, acq\nhalt")
        rmw = p.instructions[0]
        assert rmw.op == "ts" and rmw.acquire and not rmw.release

    def test_branch_with_prediction_hint(self):
        p = assemble("top:\nbnez r1, top !taken\nhalt")
        br = p.instructions[0]
        assert br.predict_taken is False

    def test_comments_and_blank_lines_ignored(self):
        p = assemble("# comment\n\nnop  # trailing\nhalt")
        assert len(p.instructions) == 2

    def test_unknown_mnemonic_raises_with_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("nop\nfrob r1, r2\n")
        assert exc.value.line_no == 2

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("ld r1\n")

    def test_bad_integer(self):
        with pytest.raises(AssemblerError):
            assemble("movi r1, banana\n")

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(IsaError):
            assemble("bnez r1, nowhere\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\na:\nnop\n")

    def test_arith_immediates(self):
        p = assemble("addi r1, r2, 4\nhalt")
        alu = p.instructions[0]
        assert alu.op == "add" and alu.imm == 4

    def test_jump(self):
        p = assemble("x:\njmp x\n")
        assert isinstance(p.instructions[0], Jump)

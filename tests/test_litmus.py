"""Litmus-test validation of the model semantics (executable Figure 1)."""

import pytest

from repro.consistency import (
    PC,
    RC,
    RCSC,
    SC,
    WC,
    LitmusTest,
    coherence_per_location,
    critical_section,
    load_buffering,
    message_passing,
    message_passing_sync,
    read,
    store_buffering,
    write,
)
from repro.sim.errors import ConfigurationError


class TestLitmusConstruction:
    def test_read_needs_register(self):
        with pytest.raises(ConfigurationError):
            LitmusTest("bad", [[read("x", "")]])

    def test_duplicate_registers_rejected(self):
        with pytest.raises(ConfigurationError):
            LitmusTest("bad", [[read("x", "r0")], [read("y", "r0")]])

    def test_acquire_write_rejected(self):
        with pytest.raises(ConfigurationError):
            write("x", 1).__class__(op="W", addr="x", value=1, acquire=True)

    def test_too_many_accesses_rejected(self):
        ops = [write("x", i) for i in range(13)]
        with pytest.raises(ConfigurationError):
            LitmusTest("big", [ops])

    def test_describe(self):
        assert "R.acq" in read("x", "r0", acquire=True).describe()
        assert "W x = 1" in write("x", 1).describe()


class TestStoreBuffering:
    """SB (Dekker): r0=r1=0 needs a load to bypass an earlier store."""

    def test_sc_forbids_both_zero(self):
        assert store_buffering().forbids(SC, r0=0, r1=0)

    @pytest.mark.parametrize("model", [PC, WC, RC], ids=lambda m: m.name)
    def test_relaxed_models_allow_both_zero(self, model):
        assert store_buffering().allows(model, r0=0, r1=0)

    def test_sc_allows_other_outcomes(self):
        sb = store_buffering()
        assert sb.allows(SC, r0=1, r1=1)
        assert sb.allows(SC, r0=0, r1=1)
        assert sb.allows(SC, r0=1, r1=0)


class TestMessagePassing:
    """MP: flag observed but data stale."""

    def test_sc_forbids_stale_data(self):
        assert message_passing().forbids(SC, r0=1, r1=0)

    def test_pc_forbids_stale_data(self):
        # PC keeps W->W and R->R order, so MP is safe under PC.
        assert message_passing().forbids(PC, r0=1, r1=0)

    @pytest.mark.parametrize("model", [WC, RC], ids=lambda m: m.name)
    def test_unlabeled_sync_breaks_under_weak_models(self, model):
        assert message_passing().allows(model, r0=1, r1=0)

    @pytest.mark.parametrize("model", [SC, PC, WC, RC, RCSC], ids=lambda m: m.name)
    def test_labeled_sync_is_safe_everywhere(self, model):
        assert message_passing_sync().forbids(model, r0=1, r1=0)


class TestLoadBuffering:
    def test_sc_and_pc_forbid(self):
        assert load_buffering().forbids(SC, r0=1, r1=1)
        assert load_buffering().forbids(PC, r0=1, r1=1)

    @pytest.mark.parametrize("model", [WC, RC], ids=lambda m: m.name)
    def test_weak_models_allow(self, model):
        assert load_buffering().allows(model, r0=1, r1=1)


class TestCoherence:
    """Per-location program order holds under every model."""

    @pytest.mark.parametrize("model", [SC, PC, WC, RC], ids=lambda m: m.name)
    def test_no_model_reorders_same_location_writes(self, model):
        # seeing 2 then (stale) 1 is forbidden everywhere
        assert coherence_per_location().forbids(model, r0=2, r1=1)

    @pytest.mark.parametrize("model", [SC, PC, WC, RC], ids=lambda m: m.name)
    def test_monotonic_observations_allowed(self, model):
        t = coherence_per_location()
        assert t.allows(model, r0=1, r1=2)
        assert t.allows(model, r0=0, r1=0)


class TestCriticalSection:
    def test_rc_handoff_preserves_data(self):
        """A consumer whose acquire saw the release value sees the data."""
        t = critical_section()
        assert t.forbids(RC, r_lock1=2, r_data=0)

    def test_rc_early_acquire_may_miss_data(self):
        t = critical_section()
        assert t.allows(RC, r_lock1=0, r_data=0)


class TestOutcomeSetRelations:
    """The outcome set grows monotonically as the model relaxes."""

    @pytest.mark.parametrize(
        "test_fn",
        [store_buffering, message_passing, load_buffering, coherence_per_location],
        ids=lambda f: f.__name__,
    )
    def test_sc_subset_of_relaxed(self, test_fn):
        t = test_fn()
        sc_outcomes = t.outcomes(SC)
        for model in (PC, WC, RC):
            assert sc_outcomes <= t.outcomes(model), model.name

    def test_rc_superset_of_wc_on_sync_tests(self):
        t = message_passing_sync()
        assert t.outcomes(WC) <= t.outcomes(RC)

    def test_initial_values_respected(self):
        t = LitmusTest(
            "init",
            threads=[[read("x", "r0")]],
            initial={"x": 9},
        )
        assert t.allows(SC, r0=9)
        assert t.forbids(SC, r0=0)

"""Tests for interconnect, directory internals, cache details, and the
system assembly layer."""

import pytest

from repro.coherence import DIRECTORY_NODE, DirState, Message, MessageKind
from repro.memory import (
    AccessKind,
    AccessRequest,
    CacheConfig,
    Interconnect,
    LatencyConfig,
    LineState,
    constant_latency,
)
from repro.sim import Simulator
from repro.sim.errors import ConfigurationError, ProtocolError
from repro.system import MachineConfig, Multiprocessor, run_workload
from repro.system.fabric import MemoryFabric, latency_by_kind


class TestInterconnect:
    def test_delivers_after_latency(self):
        sim = Simulator()
        net = Interconnect(sim, constant_latency(5))
        got = []
        net.attach(0, got.append)
        net.attach(1, got.append)
        net.send(Message(kind=MessageKind.READ, src=0, dst=1, line_addr=7))
        for _ in range(4):
            sim.step()
        assert got == []
        sim.step()
        assert len(got) == 1 and got[0].line_addr == 7

    def test_fifo_per_channel(self):
        """A later message with lower latency must not overtake."""
        sim = Simulator()
        latencies = iter([10, 1])
        net = Interconnect(sim, lambda msg: next(latencies))
        got = []
        net.attach(0, lambda m: None)
        net.attach(1, lambda m: got.append(m.line_addr))
        net.send(Message(kind=MessageKind.READ, src=0, dst=1, line_addr=1))
        net.send(Message(kind=MessageKind.READ, src=0, dst=1, line_addr=2))
        for _ in range(15):
            sim.step()
        assert got == [1, 2]

    def test_unattached_destination_rejected(self):
        sim = Simulator()
        net = Interconnect(sim, constant_latency(1))
        net.attach(0, lambda m: None)
        with pytest.raises(ConfigurationError):
            net.send(Message(kind=MessageKind.READ, src=0, dst=9, line_addr=0))

    def test_double_attach_rejected(self):
        sim = Simulator()
        net = Interconnect(sim, constant_latency(1))
        net.attach(0, lambda m: None)
        with pytest.raises(ConfigurationError):
            net.attach(0, lambda m: None)

    def test_message_stats_counted(self):
        sim = Simulator()
        net = Interconnect(sim, constant_latency(3))
        net.attach(0, lambda m: None)
        net.attach(1, lambda m: None)
        net.send(Message(kind=MessageKind.READ, src=0, dst=1, line_addr=0))
        assert sim.stats.counter("net/messages").value == 1
        assert sim.stats.counter("net/total_latency").value == 3

    def test_latency_by_kind_covers_all_kinds(self):
        fn = latency_by_kind(LatencyConfig())
        for kind in MessageKind:
            msg = Message(kind=kind, src=0, dst=1, line_addr=0)
            assert fn(msg) >= 0


class TestDirectoryInternals:
    def make(self):
        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=2)
        return sim, fabric

    def run_access(self, sim, fabric, cpu, kind, addr, value=None, rid=[0]):
        rid[0] += 1
        done = {}
        req = AccessRequest(req_id=rid[0], kind=kind, addr=addr, value=value,
                            callback=lambda r, v: done.setdefault("v", v))
        assert fabric.caches[cpu].access(req)
        sim.run(until=lambda: "v" in done, max_cycles=20_000,
                deadlock_check=False)
        return done["v"]

    def test_requests_queue_while_line_busy(self):
        sim, fabric = self.make()
        # two CPUs race for exclusive ownership of the same line
        done = {}
        for i, cpu in enumerate((0, 1)):
            req = AccessRequest(req_id=i + 1, kind=AccessKind.STORE,
                                addr=0x40, value=cpu + 1,
                                callback=lambda r, v: done.setdefault(r.req_id, v))
            assert fabric.caches[cpu].access(req)
        sim.run(until=lambda: len(done) == 2, max_cycles=50_000,
                deadlock_check=False)
        assert fabric.directory.stat_queued.value >= 1
        sim.run(until=fabric.is_quiescent, max_cycles=50_000,
                deadlock_check=False)
        # exactly one final owner
        owners = [c for c in fabric.caches
                  if c.line_state(0x40) is LineState.MODIFIED]
        assert len(owners) == 1

    def test_directory_state_tracks_transitions(self):
        sim, fabric = self.make()
        self.run_access(sim, fabric, 0, AccessKind.LOAD, 0x40)
        ent = fabric.directory.entry(0x40 // 4)
        assert ent.state is DirState.SHARED and 0 in ent.sharers
        self.run_access(sim, fabric, 1, AccessKind.STORE, 0x40, value=1)
        assert ent.state is DirState.EXCLUSIVE and ent.owner == 1

    def test_owner_rerequest_is_protocol_error(self):
        sim, fabric = self.make()
        self.run_access(sim, fabric, 0, AccessKind.STORE, 0x40, value=1)
        # inject an illegal duplicate READX from the current owner
        fabric.net.send(Message(kind=MessageKind.READX, src=0,
                                dst=DIRECTORY_NODE, line_addr=0x40 // 4))
        with pytest.raises(ProtocolError):
            for _ in range(500):
                sim.step()

    def test_sharers_of_reports_directory_view(self):
        sim, fabric = self.make()
        self.run_access(sim, fabric, 0, AccessKind.LOAD, 0x40)
        self.run_access(sim, fabric, 1, AccessKind.LOAD, 0x40)
        assert fabric.directory.sharers_of(0x40 // 4) == {0, 1}


class TestCacheDetails:
    def make(self, **cfg):
        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=1,
                              cache_config=CacheConfig(**cfg))
        return sim, fabric.caches[0], fabric

    def test_port_limits_accesses_per_cycle(self):
        sim, cache, _ = self.make(ports=1)
        r1 = AccessRequest(req_id=1, kind=AccessKind.LOAD, addr=0)
        r2 = AccessRequest(req_id=2, kind=AccessKind.LOAD, addr=64)
        sim.step()
        assert cache.access(r1)
        assert not cache.can_accept()
        assert not cache.access(r2)
        sim.step()
        assert cache.access(r2)

    def test_dual_port_config(self):
        sim, cache, _ = self.make(ports=2)
        sim.step()
        assert cache.access(AccessRequest(req_id=1, kind=AccessKind.LOAD, addr=0))
        assert cache.access(AccessRequest(req_id=2, kind=AccessKind.LOAD, addr=64))
        assert not cache.can_accept()

    def test_lru_victim_selection(self):
        sim, cache, fabric = self.make(num_sets=1, assoc=2)
        done = set()

        def go(rid, addr):
            req = AccessRequest(req_id=rid, kind=AccessKind.LOAD, addr=addr,
                                callback=lambda r, v: done.add(r.req_id))
            assert cache.access(req)
            sim.run(until=lambda: rid in done, max_cycles=10_000,
                    deadlock_check=False)

        go(1, 0x00)
        go(2, 0x10)
        go(3, 0x00)   # touch line 0 again -> line 0x10 is LRU
        go(4, 0x20)   # evicts 0x10
        assert cache.line_state(0x00) is not LineState.INVALID
        assert cache.line_state(0x10) is LineState.INVALID

    def test_warm_install_validates_line_length(self):
        _, cache, _ = self.make()
        with pytest.raises(ProtocolError):
            cache.warm_install(1, LineState.SHARED, [1, 2])  # wrong length

    def test_contents_snapshot(self):
        sim, cache, fabric = self.make()
        fabric.warm(0, 0x40, exclusive=True)
        contents = cache.contents()
        assert contents[0x40 // 4][0] == "M"

    def test_peek_word_absent_line(self):
        _, cache, _ = self.make()
        assert cache.peek_word(0x999) is None

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(num_sets=0)
        with pytest.raises(ConfigurationError):
            CacheConfig(protocol="token")
        with pytest.raises(ConfigurationError):
            LatencyConfig(request=-1)
        with pytest.raises(ConfigurationError):
            LatencyConfig.from_miss_latency(2)


class TestSystemAssembly:
    def test_machine_requires_programs(self):
        with pytest.raises(ConfigurationError):
            Multiprocessor([])

    def test_machine_config_propagates_techniques(self):
        config = MachineConfig(enable_prefetch=True, enable_speculation=True)
        pconfig = config.processor_config()
        assert pconfig.enable_prefetch and pconfig.enable_speculation

    def test_run_result_counter_access(self):
        from repro.isa import ProgramBuilder
        p = ProgramBuilder().mov_imm("r1", 1).build()
        result = run_workload([p])
        assert result.counter("cpu0/instructions_retired") == 2  # mov + halt

    def test_warm_exclusive_then_shared_conflict_rejected(self):
        from repro.isa import ProgramBuilder
        p = ProgramBuilder().build()
        m = Multiprocessor([p, p][:2])
        m.warm(0, 0x40, exclusive=True)
        with pytest.raises(ValueError):
            m.warm(1, 0x40, exclusive=False)

    def test_miss_latency_knob_changes_timing(self):
        from repro.isa import ProgramBuilder
        p = ProgramBuilder().load("r1", addr=0x40).build()
        slow = run_workload([p], miss_latency=200)
        fast = run_workload([p], miss_latency=20)
        assert slow.cycles > fast.cycles + 100

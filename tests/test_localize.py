"""Divergence localization (``repro.verify.localize``).

The acceptance contract for the localizer: an injected SLB fault is
automatically pinned to the **first divergent architectural event**,
both scalar-vs-scalar (clean reference vs faulted subject) and
scalar-vs-batched, with the paired archtraces written next to the
report.  The no-fault path diffs the two backends directly and comes
back ``identical`` on a conventional leg (the parity pin, localized).
"""

import dataclasses
import os

from repro.consistency.litmus import STANDARD_TESTS
from repro.verify.corpus import CORPUS_VERSION, Corpus, CorpusEntry
from repro.verify.harness import (
    DEFAULT_RUN_CONFIGS,
    Divergence,
    HarnessConfig,
    check_test,
    clear_faults,
)
from repro.verify.localize import LocalizationResult, localize_divergence


def _fault_config():
    # SB under SC with speculation diverges deterministically under the
    # slb-deaf fault (the buffer ignores invalidation snoops, so the
    # speculative load is never rolled back)
    return HarnessConfig(models=("SC",), techniques=((False, True),),
                         run_configs=DEFAULT_RUN_CONFIGS[:1],
                         fault="slb-deaf", oracle="sim")


class TestFaultLocalization:
    def test_injected_fault_is_pinned_to_first_arch_event(self, tmp_path):
        test = STANDARD_TESTS["SB"]()
        config = _fault_config()
        try:
            result = check_test(test, config)
            assert result.divergences, "fault must be caught first"
            loc = localize_divergence(test, result.divergences[0],
                                      config=config, test_name="SB",
                                      out_dir=str(tmp_path))
        finally:
            clear_faults()

        assert set(loc.reports) == {"scalar-vs-scalar", "scalar-vs-batched"}
        for name, report in loc.reports.items():
            assert report.classification == "architectural", name
            assert report.arch_event_a or report.arch_event_b, name
        # the honest-fallback tag (speculative legs are outside the
        # batch envelope, so the "batched" reference really ran scalar
        # and must say so)
        ref_header = loc.reports["scalar-vs-batched"].header_a
        assert ref_header.get("backend") == "scalar"
        assert ref_header.get("fallback_reason")
        # paired archtraces are on disk for CI upload
        for path_a, path_b in loc.artifacts.values():
            assert os.path.exists(path_a) and os.path.exists(path_b)

    def test_localization_round_trips_and_lands_in_corpus(self, tmp_path):
        test = STANDARD_TESTS["SB"]()
        config = _fault_config()
        try:
            result = check_test(test, config)
            loc = localize_divergence(test, result.divergences[0],
                                      config=config, test_name="SB",
                                      out_dir=str(tmp_path / "loc"))
        finally:
            clear_faults()

        again = LocalizationResult.from_dict(loc.to_dict())
        assert again.fault == "slb-deaf"
        assert (again.reports["scalar-vs-scalar"].classification
                == "architectural")

        corpus = Corpus()
        corpus.add(CorpusEntry(
            master_seed=0, index=0, derived_seed=0, test={},
            divergences=[], fault="slb-deaf",
            localization=loc.to_dict()))
        path = tmp_path / "corpus.json"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert loaded.version == CORPUS_VERSION == 3
        entry_loc = LocalizationResult.from_dict(
            loaded.entries[0].localization)
        assert (entry_loc.reports["scalar-vs-batched"].classification
                == "architectural")


class TestNoFaultLocalization:
    def test_conventional_leg_localizes_as_identical(self, tmp_path):
        # without a fault the localizer compares the two backends; on a
        # conventional leg they are bit-identical by contract
        test = STANDARD_TESTS["MP"]()
        div = Divergence(test_name="MP", model="WC", prefetch=False,
                         speculation=False, config_name="warm-tight",
                         observed=(), permitted_count=0)
        loc = localize_divergence(test, div, config=HarnessConfig(),
                                  test_name="MP", out_dir=str(tmp_path))
        assert set(loc.reports) == {"scalar-vs-batched"}
        report = loc.reports["scalar-vs-batched"]
        assert report.classification == "identical"
        assert report.header_b.get("backend") == "batched"

    def test_unknown_run_config_is_rejected(self):
        test = STANDARD_TESTS["MP"]()
        div = dataclasses.replace(
            Divergence(test_name="MP", model="WC", prefetch=False,
                       speculation=False, config_name="no-such-config",
                       observed=(), permitted_count=0))
        try:
            localize_divergence(test, div)
        except KeyError as exc:
            assert "no-such-config" in str(exc)
        else:
            raise AssertionError("expected KeyError")

"""Tests for the delay-arc rules — an executable version of Figure 1."""

import pytest

from repro.consistency import (
    ACQUIRE,
    ACQUIRE_RMW,
    PLAIN_LOAD,
    PLAIN_STORE,
    RELEASE,
    AccessClass,
    PC,
    RC,
    RCSC,
    SC,
    WC,
    classify,
    get_model,
)
from repro.isa import Alu, Load, Rmw, Store


class TestAccessClass:
    def test_requires_read_or_write(self):
        with pytest.raises(ValueError):
            AccessClass(is_load=False, is_store=False)

    def test_acquire_must_read(self):
        with pytest.raises(ValueError):
            AccessClass(is_load=False, is_store=True, acquire=True)

    def test_release_must_write(self):
        with pytest.raises(ValueError):
            AccessClass(is_load=True, is_store=False, release=True)

    def test_classify_instructions(self):
        assert classify(Load(dst="r1", acquire=True)) == ACQUIRE
        assert classify(Store(src="r1")) == PLAIN_STORE
        rmw = classify(Rmw(dst="r1", acquire=True))
        assert rmw.is_load and rmw.is_store and rmw.acquire

    def test_classify_rejects_non_memory(self):
        with pytest.raises(TypeError):
            classify(Alu(op="mov", dst="r1", src1="r0", imm=0))

    def test_is_sync(self):
        assert ACQUIRE.is_sync and RELEASE.is_sync
        assert not PLAIN_LOAD.is_sync


class TestSequentialConsistency:
    """Figure 1 top-left: every access ordered after the previous one."""

    @pytest.mark.parametrize("a", [PLAIN_LOAD, PLAIN_STORE, ACQUIRE, RELEASE])
    @pytest.mark.parametrize("b", [PLAIN_LOAD, PLAIN_STORE, ACQUIRE, RELEASE])
    def test_all_pairs_ordered(self, a, b):
        assert SC.delay_arc(a, b)


class TestProcessorConsistency:
    """Figure 1 top-right: reads bypass earlier writes; all else ordered."""

    def test_store_load_relaxed(self):
        assert not PC.delay_arc(PLAIN_STORE, PLAIN_LOAD)

    @pytest.mark.parametrize(
        "a,b",
        [
            (PLAIN_LOAD, PLAIN_LOAD),
            (PLAIN_LOAD, PLAIN_STORE),
            (PLAIN_STORE, PLAIN_STORE),
        ],
    )
    def test_other_pairs_ordered(self, a, b):
        assert PC.delay_arc(a, b)

    def test_rmw_keeps_both_arcs(self):
        # An RMW writes, but it also reads, so load->RMW and RMW->load arcs hold.
        assert PC.delay_arc(ACQUIRE_RMW, PLAIN_LOAD)
        assert PC.delay_arc(PLAIN_STORE, ACQUIRE_RMW)


class TestWeakConsistency:
    """Figure 1 bottom-left: pipelining between syncs; syncs fence all."""

    def test_data_data_unordered(self):
        assert not WC.delay_arc(PLAIN_LOAD, PLAIN_STORE)
        assert not WC.delay_arc(PLAIN_STORE, PLAIN_LOAD)
        assert not WC.delay_arc(PLAIN_STORE, PLAIN_STORE)
        assert not WC.delay_arc(PLAIN_LOAD, PLAIN_LOAD)

    def test_sync_fences_both_directions(self):
        assert WC.delay_arc(ACQUIRE, PLAIN_LOAD)   # after sync waits
        assert WC.delay_arc(PLAIN_STORE, ACQUIRE)  # sync waits for before
        assert WC.delay_arc(RELEASE, PLAIN_STORE)
        assert WC.delay_arc(PLAIN_LOAD, RELEASE)

    def test_sync_sync_ordered(self):
        assert WC.delay_arc(ACQUIRE, RELEASE)
        assert WC.delay_arc(RELEASE, ACQUIRE)


class TestReleaseConsistency:
    """Figure 1 bottom-right: only acquire->later and earlier->release."""

    def test_data_accesses_unordered(self):
        assert not RC.delay_arc(PLAIN_LOAD, PLAIN_STORE)
        assert not RC.delay_arc(PLAIN_STORE, PLAIN_LOAD)

    def test_acquire_blocks_later(self):
        assert RC.delay_arc(ACQUIRE, PLAIN_LOAD)
        assert RC.delay_arc(ACQUIRE, PLAIN_STORE)
        assert RC.delay_arc(ACQUIRE, RELEASE)

    def test_release_waits_for_earlier(self):
        assert RC.delay_arc(PLAIN_LOAD, RELEASE)
        assert RC.delay_arc(PLAIN_STORE, RELEASE)
        assert RC.delay_arc(ACQUIRE, RELEASE)

    def test_accesses_after_release_not_delayed(self):
        """RC does not delay accesses following a release (Section 2)."""
        assert not RC.delay_arc(RELEASE, PLAIN_LOAD)
        assert not RC.delay_arc(RELEASE, PLAIN_STORE)

    def test_acquire_not_delayed_for_earlier_data(self):
        """RC does not require an acquire to be delayed for its previous
        accesses (Section 2)."""
        assert not RC.delay_arc(PLAIN_LOAD, ACQUIRE)
        assert not RC.delay_arc(PLAIN_STORE, ACQUIRE)

    def test_rcpc_release_acquire_unordered(self):
        assert not RC.delay_arc(RELEASE, ACQUIRE)

    def test_rcsc_release_acquire_ordered(self):
        assert RCSC.delay_arc(RELEASE, ACQUIRE)


class TestStrictnessHierarchy:
    """Every arc of a relaxed model is also an arc of a stricter one."""

    CLASSES = [PLAIN_LOAD, PLAIN_STORE, ACQUIRE, RELEASE, ACQUIRE_RMW]

    def assert_weaker(self, strict, relaxed):
        for a in self.CLASSES:
            for b in self.CLASSES:
                if relaxed.delay_arc(a, b):
                    assert strict.delay_arc(a, b), (
                        f"{relaxed.name} orders {a}->{b} but {strict.name} does not"
                    )

    def test_pc_weaker_than_sc(self):
        self.assert_weaker(SC, PC)

    def test_wc_weaker_than_sc(self):
        self.assert_weaker(SC, WC)

    def test_rc_weaker_than_wc(self):
        self.assert_weaker(WC, RC)

    def test_rc_weaker_than_rcsc(self):
        self.assert_weaker(RCSC, RC)


class TestDrf0:
    """DRF0 (paper, Section 2): sync accesses fence without the
    acquire/release distinction."""

    def test_registered_and_named(self):
        from repro.consistency import DRF0
        assert get_model("drf0") is DRF0

    def test_sync_fences_both_ways(self):
        from repro.consistency import DRF0
        assert DRF0.delay_arc(ACQUIRE, PLAIN_LOAD)
        assert DRF0.delay_arc(PLAIN_LOAD, ACQUIRE)   # unlike RC
        assert DRF0.delay_arc(RELEASE, PLAIN_STORE)  # unlike RC

    def test_data_accesses_free(self):
        from repro.consistency import DRF0
        assert not DRF0.delay_arc(PLAIN_LOAD, PLAIN_STORE)
        assert not DRF0.delay_arc(PLAIN_STORE, PLAIN_LOAD)

    def test_strictly_between_rc_and_sc(self):
        from repro.consistency import DRF0
        classes = [PLAIN_LOAD, PLAIN_STORE, ACQUIRE, RELEASE]
        for a in classes:
            for b in classes:
                if RC.delay_arc(a, b):
                    assert DRF0.delay_arc(a, b)
                if DRF0.delay_arc(a, b):
                    assert SC.delay_arc(a, b)

    def test_runs_on_detailed_simulator(self):
        from repro.consistency import DRF0
        from repro.isa import ProgramBuilder
        from repro.system import run_workload

        p = (ProgramBuilder()
             .store_imm(1, addr=0x40)
             .load("r1", addr=0x40)
             .build())
        result = run_workload([p], model=DRF0, speculation=True)
        assert result.machine.reg(0, "r1") == 1


class TestDerivedQueries:
    def test_sc_every_load_is_acquire_like(self):
        """Under SC the speculative buffer sets acq on all loads (Sec 4.2)."""
        assert SC.load_blocks_later_accesses(PLAIN_LOAD)

    def test_rc_only_real_acquires_block(self):
        assert RC.load_blocks_later_accesses(ACQUIRE)
        assert not RC.load_blocks_later_accesses(PLAIN_LOAD)

    def test_sc_load_waits_for_previous_store(self):
        assert SC.load_waits_for_store(PLAIN_STORE, PLAIN_LOAD)

    def test_rc_load_does_not_wait_for_store(self):
        assert not RC.load_waits_for_store(PLAIN_STORE, PLAIN_LOAD)
        assert not RC.load_waits_for_store(RELEASE, PLAIN_LOAD)

    def test_may_perform_conventional_rule(self):
        # Under SC nothing may perform past a pending access
        assert not SC.may_perform([PLAIN_STORE], PLAIN_LOAD)
        # Under PC a load may perform past a pending (pure) store
        assert PC.may_perform([PLAIN_STORE], PLAIN_LOAD)
        # Under RC a load may perform past anything but a pending acquire
        assert RC.may_perform([PLAIN_STORE, PLAIN_LOAD, RELEASE], PLAIN_LOAD)
        assert not RC.may_perform([ACQUIRE], PLAIN_LOAD)

    def test_get_model_lookup(self):
        assert get_model("sc") is SC
        assert get_model("RC") is RC
        with pytest.raises(KeyError):
            get_model("TSO")

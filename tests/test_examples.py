"""Smoke tests: every example script runs and says what it promises."""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(name, monkeypatch, capsys, argv=()):
    monkeypatch.setattr(sys, "argv", [f"{EXAMPLES}/{name}.py", *argv])
    runpy.run_path(f"{EXAMPLES}/{name}.py", run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example("quickstart", monkeypatch, capsys)
        assert "Example 1" in out
        assert "301" in out           # the paper column
        assert "equalize" in out.lower() or "as fast as" in out.lower()

    def test_producer_consumer(self, monkeypatch, capsys):
        out = run_example("producer_consumer", monkeypatch, capsys)
        assert out.count("yes") >= 8  # 4 models x 2 techniques all correct
        assert "NO" not in out

    def test_litmus_explorer(self, monkeypatch, capsys):
        out = run_example("litmus_explorer", monkeypatch, capsys)
        assert "store-buffering" in out
        assert "message-passing" in out
        assert "outcome sets" in out

    def test_figure5_walkthrough(self, monkeypatch, capsys):
        out = run_example("figure5_walkthrough", monkeypatch, capsys)
        assert "invalidation for D arrives" in out
        assert "squash" in out
        assert "r2 = MEM[D]    = 1" in out

    def test_figure5_walkthrough_custom_cycle(self, monkeypatch, capsys):
        out = run_example("figure5_walkthrough", monkeypatch, capsys,
                          argv=["40"])
        assert "Figure 5 scenario completed" in out

    def test_timing_diagrams(self, monkeypatch, capsys):
        out = run_example("timing_diagrams", monkeypatch, capsys)
        assert "#" in out and "p" in out
        assert "302 cycles" in out and "104 cycles" in out

    def test_timing_diagrams_example1(self, monkeypatch, capsys):
        out = run_example("timing_diagrams", monkeypatch, capsys,
                          argv=["example1"])
        assert "301 cycles" in out and "103 cycles" in out

    def test_trace_analysis(self, monkeypatch, capsys):
        out = run_example("trace_analysis", monkeypatch, capsys)
        assert "captured trace" in out
        assert "trace-driven sweep" in out

    def test_sc_violation_detector(self, monkeypatch, capsys):
        out = run_example("sc_violation_detector", monkeypatch, capsys)
        assert "no potential SC violations" in out
        assert "1 potential SC violation" in out

    def test_static_analysis(self, monkeypatch, capsys):
        out = run_example("static_analysis", monkeypatch, capsys)
        assert "data-race" in out
        assert "sc_guaranteed=True" in out
        assert "all invariants hold" in out
        assert "agreement holds on every case" in out

    @pytest.mark.slow
    def test_critical_section_study(self, monkeypatch, capsys):
        out = run_example("critical_section_study", monkeypatch, capsys)
        assert "private locks" in out
        assert "contended" in out
        assert "NO" not in out

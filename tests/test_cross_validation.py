"""Cross-validation: the detailed simulator vs the litmus checker.

The litmus checker enumerates every outcome a model *allows*; the
detailed machine produces one concrete execution.  For every litmus
test, model, and technique combination, the machine's observed outcome
must lie inside the checker's allowed set — in particular, an SC
machine with both techniques enabled must never exhibit a non-SC
outcome, which is the paper's entire correctness claim.

To explore more than one interleaving we skew the processors' start
times with per-CPU delay loops.
"""

import pytest

from repro.consistency import PC, RC, RCSC, SC, WC, LitmusTest
from repro.consistency.litmus import (
    load_buffering,
    message_passing,
    message_passing_sync,
    sb_with_sync,
    store_buffering,
)
from repro.system import run_workload

MODELS = [SC, PC, WC, RC]


def run_litmus_on_machine(test: LitmusTest, model, prefetch, speculation,
                          delays):
    """Compile via :meth:`LitmusTest.to_programs` and read the outcome
    back from the audit slots."""
    programs, audit_map = test.to_programs(delays=delays)
    result = run_workload(programs, model=model, prefetch=prefetch,
                          speculation=speculation, miss_latency=40,
                          initial_memory={a: 0
                                          for a in test.addresses().values()},
                          max_cycles=1_000_000)
    outcome = tuple(sorted(
        (reg, result.machine.read_word(slot))
        for reg, slot in audit_map.items()
    ))
    return outcome


TESTS = [store_buffering, message_passing, message_passing_sync,
         load_buffering]
DELAY_PATTERNS = [(0, 0), (0, 40), (40, 0), (15, 3)]


@pytest.mark.parametrize("test_fn", TESTS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize("tech", ["base", "both"])
def test_observed_outcome_is_model_legal(test_fn, model, tech):
    test = test_fn()
    allowed = test.outcomes(model)
    prefetch = speculation = (tech == "both")
    for delays in DELAY_PATTERNS:
        outcome = run_litmus_on_machine(test, model, prefetch,
                                        speculation, delays)
        assert outcome in allowed, (
            f"{test.name} under {model.name}/{tech} with skew {delays} "
            f"produced {outcome}, which the model forbids"
        )


@pytest.mark.parametrize("tech", ["base", "both"])
def test_sc_machine_forbids_dekker_outcome_with_skews(tech):
    """The headline: an SC machine with the paper's techniques never
    shows the store-buffering relaxation, under any start skew."""
    test = store_buffering()
    prefetch = speculation = (tech == "both")
    for delays in DELAY_PATTERNS + [(5, 5), (1, 30), (30, 1)]:
        outcome = run_litmus_on_machine(test, SC, prefetch, speculation,
                                        delays)
        values = dict(outcome)
        assert not (values["r0"] == 0 and values["r1"] == 0), (
            f"SC violated with skew {delays} ({tech})"
        )


@pytest.mark.parametrize("model", [RC, RCSC], ids=lambda m: m.name)
def test_sb_with_sync_stays_model_legal(model):
    """The RCpc/RCsc distinction survives the trip through real
    hardware: whatever the machine produces, the matching checker
    allows it (and the RCsc checker forbids the Dekker outcome, so an
    RCsc machine must never show it)."""
    test = sb_with_sync()
    allowed = test.outcomes(model)
    for delays in DELAY_PATTERNS:
        outcome = run_litmus_on_machine(test, model, True, True, delays)
        assert outcome in allowed, (model.name, delays, outcome)


def test_sync_message_passing_correct_everywhere():
    test = message_passing_sync()
    for model in MODELS:
        for delays in DELAY_PATTERNS:
            outcome = run_litmus_on_machine(test, model, True, True, delays)
            values = dict(outcome)
            if values["r0"] == 1:  # saw the flag -> must see the data
                assert values["r1"] == 1, (model.name, delays)


# ----------------------------------------------------------------------
# Randomized litmus cross-validation (hypothesis)
# ----------------------------------------------------------------------

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency import read as litmus_read
from repro.consistency import write as litmus_write


@st.composite
def random_litmus(draw):
    addrs = ["x", "y"]
    reg_counter = [0]

    def thread(tid):
        ops = []
        for _ in range(draw(st.integers(1, 3))):
            addr = draw(st.sampled_from(addrs))
            if draw(st.booleans()):
                ops.append(litmus_write(addr, draw(st.integers(1, 3)),
                                        release=draw(st.booleans())))
            else:
                reg_counter[0] += 1
                ops.append(litmus_read(addr, f"r{tid}_{reg_counter[0]}",
                                       acquire=draw(st.booleans())))
        return ops

    return LitmusTest("generated", [thread(0), thread(1)])


class TestRandomLitmusCrossValidation:
    @given(test=random_litmus(),
           model=st.sampled_from(MODELS),
           spec=st.booleans(),
           delays=st.sampled_from(DELAY_PATTERNS))
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_machine_outcome_always_model_legal(self, test, model, spec,
                                                delays):
        """For ANY random litmus shape, the detailed machine's outcome
        lies inside the model checker's allowed set."""
        allowed = test.outcomes(model)
        outcome = run_litmus_on_machine(test, model, spec, spec, delays)
        assert outcome in allowed, (
            f"{model.name} machine produced {outcome}; "
            f"checker allows only {sorted(allowed)}"
        )

"""Shared fixtures.

``sanitized_run`` wraps :func:`repro.system.run_workload` with a trace
recorder and asserts the trace invariants afterwards, so any test can
opt into sanitized execution by taking the fixture and calling it like
``run_workload``.
"""

import pytest

from repro.analysis.static import sanitize_trace
from repro.sim.trace import TraceRecorder
from repro.system import run_workload


@pytest.fixture
def sanitized_run():
    """``run_workload`` that fails the test on any trace-invariant
    violation.  Returns the usual ``RunResult``; the sanitizer report
    is attached as ``result.sanitizer_report``."""

    def _run(programs, model, **kwargs):
        trace = kwargs.pop("trace", None) or TraceRecorder()
        result = run_workload(programs, model=model, trace=trace, **kwargs)
        report = sanitize_trace(trace, model=model)
        result.sanitizer_report = report
        report.raise_if_failed()
        return result

    return _run

"""Precise-interrupt verification.

Section 4.2 leans on the reorder buffer providing precise interrupts:
at any rollback point, committed architectural state is exactly the
sequential-execution state at that instruction boundary, so execution
can restart transparently.  These tests weaponize that property: we
inject squashes at arbitrary cycles (re-fetching from the squashed
instruction, exactly like an interrupt-return) and require the final
architectural results to be bit-identical to an undisturbed run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import RC, SC
from repro.isa import assemble, interpret
from repro.memory import LatencyConfig
from repro.system.machine import MachineConfig, Multiprocessor

PROGRAM = """
    movi r1, 3
    st   r1, 0x10
    ld   r2, 0x10
    addi r2, r2, 10
    st   r2, 0x14
    ld   r3, 0x14
    rmw.add r4, 0x10, r1
    ld   r5, 0x10
    st   r5, 0x20
    ld   r6, 0x20
    halt
"""


def run_with_injected_squash(squash_cycle, model=SC, spec=True):
    program = assemble(PROGRAM)
    config = MachineConfig(
        model=model, enable_speculation=spec, enable_prefetch=spec,
        latencies=LatencyConfig.from_miss_latency(50),
    )
    machine = Multiprocessor([program], config)
    proc = machine.processors[0]
    injected = {"done": False}

    def inject(cycle):
        if injected["done"] or cycle != squash_cycle:
            return
        injected["done"] = True
        # squash the youngest *squashable* instruction: anything not yet
        # signalled to memory (signalled stores are committed)
        entries = proc.rob.entries()
        candidates = [e for e in entries if not e.signalled]
        if not candidates:
            return
        victim = candidates[-1]
        proc.squash_from(victim.seq, victim.pc, "injected interrupt")

    machine.sim.add_trace_hook(inject)
    machine.run(max_cycles=200_000)
    return machine, injected["done"]


class TestInjectedSquashTransparency:
    @pytest.mark.parametrize("cycle", [2, 3, 5, 8, 13, 21, 40, 55, 70, 90])
    @pytest.mark.parametrize("model", [SC, RC], ids=lambda m: m.name)
    def test_state_identical_after_injection(self, cycle, model):
        expected = interpret(assemble(PROGRAM))
        machine, fired = run_with_injected_squash(cycle, model=model)
        for reg in ("r2", "r3", "r4", "r5", "r6"):
            assert machine.reg(0, reg) == expected.reg(reg), (cycle, reg)
        for addr in (0x10, 0x14, 0x20):
            assert machine.read_word(addr) == expected.word(addr)

    @given(cycle=st.integers(min_value=1, max_value=120),
           spec=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_any_cycle_any_technique(self, cycle, spec):
        expected = interpret(assemble(PROGRAM))
        machine, _ = run_with_injected_squash(cycle, model=SC, spec=spec)
        assert machine.reg(0, "r6") == expected.reg("r6")
        assert machine.read_word(0x20) == expected.word(0x20)

    def test_injection_actually_fires_sometimes(self):
        fired_any = False
        for cycle in (2, 5, 10, 20):
            _, fired = run_with_injected_squash(cycle)
            fired_any = fired_any or fired
        assert fired_any, "the injection never found a squashable entry"

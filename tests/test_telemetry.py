"""Campaign telemetry substrate: metrics registry, spans, shipping.

Covers the exposition-format conformance the ISSUE pins down (label
escaping, histogram bucket monotonicity), merge associativity across
worker orderings (counters add, gauges max), the collect/absorb
shipping protocol, and Perfetto validity of merged multi-process span
traces.
"""

import json

import pytest

from repro.obs import telemetry as tm
from repro.obs.perfetto import validate_trace_events
from repro.obs.telemetry.metrics import prometheus_name


class TestPrometheusExposition:
    def test_counter_gets_total_suffix_and_type_line(self):
        reg = tm.MetricsRegistry()
        reg.inc("sweep/items", 7)
        text = reg.to_prometheus()
        assert "# TYPE repro_sweep_items_total counter" in text
        assert "repro_sweep_items_total 7" in text

    def test_name_sanitization(self):
        assert prometheus_name("batch/compile-memo.hit") == \
            "repro_batch_compile_memo_hit"

    def test_label_value_escaping(self):
        reg = tm.MetricsRegistry()
        reg.inc("batch/fallback",
                labels={"reason": 'cache "x\\y"\nprotocol'})
        text = reg.to_prometheus()
        # Prometheus text format: \ -> \\, " -> \", newline -> \n
        assert 'reason="cache \\"x\\\\y\\"\\nprotocol"' in text
        assert "\nrepro_batch_fallback_total{" in text

    def test_label_sets_sorted_and_deterministic(self):
        a = tm.MetricsRegistry()
        b = tm.MetricsRegistry()
        a.inc("x", labels={"b": "2", "a": "1"})
        b.inc("x", labels={"a": "1", "b": "2"})
        assert a.to_prometheus() == b.to_prometheus()
        assert 'x_total{a="1",b="2"}' in a.to_prometheus()

    def test_histogram_buckets_cumulative_and_monotonic(self):
        reg = tm.MetricsRegistry()
        for v in (0.0005, 0.003, 0.003, 1.5, 120.0):
            reg.observe("sweep/chunk_busy_seconds", v)
        text = reg.to_prometheus()
        assert "# TYPE repro_sweep_chunk_busy_seconds histogram" in text
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_sweep_chunk_busy_seconds_bucket"):
                counts.append(float(line.rsplit(" ", 1)[1]))
        assert counts, "no bucket lines rendered"
        assert counts == sorted(counts), "buckets must be cumulative"
        assert 'le="+Inf"' in text
        # +Inf bucket == _count == number of observations
        assert counts[-1] == 5
        assert "repro_sweep_chunk_busy_seconds_count 5" in text
        assert "repro_sweep_chunk_busy_seconds_sum" in text

    def test_gauge_type_line(self):
        reg = tm.MetricsRegistry()
        reg.set_gauge("sweep/queue_wait_seconds", 0.25)
        text = reg.to_prometheus()
        assert "# TYPE repro_sweep_queue_wait_seconds gauge" in text
        assert "repro_sweep_queue_wait_seconds 0.25" in text

    def test_negative_counter_increment_rejected(self):
        reg = tm.MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("x", -1)


def _populate(reg, n):
    reg.inc("legs", n)
    reg.inc("fallback", n, labels={"reason": "deadlock"})
    reg.set_gauge("queue_wait", n / 10.0)
    for i in range(n):
        reg.observe("busy", 0.001 * (i + 1))


class TestMergeAssociativity:
    def _regs(self):
        regs = []
        for n in (3, 5, 11):
            reg = tm.MetricsRegistry()
            _populate(reg, n)
            regs.append(reg)
        return regs

    def _merged(self, order):
        regs = self._regs()
        acc = tm.MetricsRegistry()
        for i in order:
            acc.merge_from(regs[i])
        return acc

    @staticmethod
    def _split_sums(text):
        """Histogram ``_sum`` lines are float additions, so merge order
        may shift the last ulp; everything else must match exactly."""
        exact, sums = [], []
        for line in text.splitlines():
            if "_sum " in line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                sums.append((name, float(value)))
            else:
                exact.append(line)
        return exact, sums

    def test_worker_completion_order_is_irrelevant(self):
        base_exact, base_sums = self._split_sums(
            self._merged((0, 1, 2)).to_prometheus())
        for order in ((2, 1, 0), (1, 0, 2), (2, 0, 1)):
            exact, sums = self._split_sums(
                self._merged(order).to_prometheus())
            assert exact == base_exact
            assert [n for n, _ in sums] == [n for n, _ in base_sums]
            for (_, got), (_, want) in zip(sums, base_sums):
                assert got == pytest.approx(want)

    def test_counters_add_gauges_max(self):
        acc = self._merged((1, 2, 0))
        assert acc.counter_value("legs") == 19
        assert acc.counter_value(
            "fallback", labels={"reason": "deadlock"}) == 19
        assert acc.gauge_value("queue_wait") == pytest.approx(1.1)

    def test_associative_grouping(self):
        regs = self._regs()
        left = tm.MetricsRegistry()
        left.merge_from(regs[0])
        left.merge_from(regs[1])
        left.merge_from(regs[2])
        inner = tm.MetricsRegistry()
        inner.merge_from(regs[1])
        inner.merge_from(regs[2])
        right = tm.MetricsRegistry()
        right.merge_from(regs[0])
        right.merge_from(inner)
        assert left.snapshot() == right.snapshot()

    def test_state_round_trip(self):
        reg = tm.MetricsRegistry()
        _populate(reg, 4)
        clone = tm.MetricsRegistry.from_state(reg.to_state())
        assert clone.to_prometheus() == reg.to_prometheus()
        assert clone.snapshot() == reg.snapshot()

    def test_state_is_json_serializable(self):
        reg = tm.MetricsRegistry()
        _populate(reg, 2)
        rewired = json.loads(json.dumps(reg.to_state()))
        assert tm.MetricsRegistry.from_state(
            rewired).snapshot() == reg.snapshot()


class TestShippingProtocol:
    def test_disabled_module_calls_are_noops(self):
        assert not tm.enabled()
        before = len(tm.registry())
        tm.inc("should/not/land")
        tm.observe("nor/this", 1.0)
        with tm.span("quiet") as args:
            args["x"] = 1
        assert len(tm.registry()) == before
        assert not tm.enabled()

    def test_collect_scope_isolates_and_restores(self):
        outer_reg = tm.registry()
        with tm.collect(process="test scope") as scope:
            assert tm.enabled()
            tm.inc("campaign/legs", 3)
            with tm.span("campaign/chunk", {"items": 2}):
                pass
            assert tm.registry() is scope.metrics
        assert tm.registry() is outer_reg
        assert not tm.enabled()
        assert scope.metrics.counter_value("campaign/legs") == 3
        assert len(scope.spans) == 1

    def test_nested_collect_does_not_double_count(self):
        with tm.collect() as parent:
            tm.inc("legs", 3)
            with tm.collect() as child:
                tm.inc("legs", 5)
                shipment = child.shipment()
            tm.absorb(shipment)
            assert parent.metrics.counter_value("legs") == 8
        assert child.metrics.counter_value("legs") == 5

    def test_shipment_survives_json_round_trip(self):
        with tm.collect(process="worker 1") as scope:
            tm.inc("legs", 2)
            with tm.span("chunk"):
                pass
        shipment = json.loads(json.dumps(scope.shipment()))
        target = tm.MetricsRegistry()
        tracer = tm.SpanTracer(process="parent")
        tm.absorb(shipment, metrics_registry=target, span_tracer=tracer)
        assert target.counter_value("legs") == 2
        assert len(tracer) == 1


class TestSpanTrace:
    def _two_process_tracer(self):
        parent = tm.SpanTracer(process="campaign")
        with parent.span("verify/campaign", {"tests": 2}):
            pass
        worker = tm.SpanTracer(process="worker 0")
        worker._pid = parent._pid + 1  # simulate a separate process
        with worker.span("sweep/chunk", {"items": 1}):
            pass
        parent.absorb_state(worker.to_state())
        return parent

    def test_merged_trace_validates(self):
        parent = self._two_process_tracer()
        events = parent.to_trace_events()
        assert validate_trace_events({"traceEvents": events}) == []

    def test_process_name_metadata_per_pid(self):
        events = self._two_process_tracer().to_trace_events()
        names = {e["pid"]: e["args"]["name"] for e in events
                 if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert sorted(names.values()) == ["campaign", "worker 0"]
        pids = {e["pid"] for e in events if e.get("ph") == "X"}
        assert len(pids) == 2

    def test_timestamps_rebased_to_zero_origin(self):
        events = self._two_process_tracer().to_trace_events()
        xs = [e for e in events if e.get("ph") == "X"]
        assert min(e["ts"] for e in xs) == 0

    def test_write_perfetto(self, tmp_path):
        path = tmp_path / "trace.json"
        self._two_process_tracer().write_perfetto(
            str(path), label="unit test")
        obj = json.loads(path.read_text())
        assert validate_trace_events(obj) == []
        assert obj["otherData"]["label"] == "unit test"

"""The kernel's host-side self-profiler (`repro.sim.profiler`).

Two invariants matter: profiling OFF changes nothing (the default step
path is untouched, no host counters appear), and profiling ON measures
a total-and-exclusive attribution (per-component shares sum to ~100%)
without perturbing any simulated result.
"""

import pytest

from repro.consistency import SC
from repro.obs.report import example_workload
from repro.sim import Component, HostProfiler, Simulator
from repro.sim.profiler import HOST_PREFIX
from repro.system import run_workload


def _example1(profile=False):
    wl = example_workload("example1")
    return run_workload([wl.program], model=SC,
                        initial_memory=wl.initial_memory,
                        warm_lines=wl.warm_lines, profile=profile)


class Spinner(Component):
    name = "spinner"

    def __init__(self, limit):
        self.count = 0
        self.limit = limit

    def tick(self, cycle):
        self.count += 1

    def done(self):
        return self.count >= self.limit

    def is_quiescent(self):
        return False


class TestProfilingOff:
    def test_no_profiler_by_default(self):
        assert Simulator().profiler is None

    def test_no_host_counters_without_profiling(self):
        result = _example1(profile=False)
        assert not any(k.startswith("host/")
                       for k in result.stats.snapshot())

    def test_off_and_on_agree_on_everything_simulated(self):
        off = _example1(profile=False)
        on = _example1(profile=True)
        assert on.cycles == off.cycles
        guest_on = {k: v for k, v in on.stats.snapshot().items()
                    if not k.startswith("host/")}
        assert guest_on == dict(off.stats.snapshot())


class TestProfilingOn:
    def test_shares_sum_to_one(self):
        result = _example1(profile=True)
        profiler = result.machine.sim.profiler
        shares = profiler.shares()
        assert shares  # at least one component class measured
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
        assert all(0.0 <= s <= 1.0 for s in shares.values())

    def test_gauges_exported_through_stats(self):
        result = _example1(profile=True)
        snapshot = result.stats.snapshot()
        assert snapshot[HOST_PREFIX + "cycles"] == result.cycles
        assert snapshot[HOST_PREFIX + "wall_ns"] > 0
        assert snapshot[HOST_PREFIX + "cycles_per_sec"] > 0
        assert snapshot[HOST_PREFIX + "tick_ns/Processor"] > 0

    def test_export_is_idempotent_across_runs(self):
        # a Simulator can be run() repeatedly; gauges must be set, not
        # accumulated, so the last export wins instead of double-counting
        sim = Simulator(profile=True)
        spinner = Spinner(10)
        sim.register(spinner)
        sim.run(until=spinner.done, deadlock_check=False)
        first = sim.stats.counter(HOST_PREFIX + "cycles").value
        spinner.limit = 20
        sim.run(until=spinner.done, deadlock_check=False)
        assert first == 10
        assert sim.stats.counter(HOST_PREFIX + "cycles").value == 20

    def test_enable_profiling_idempotent(self):
        sim = Simulator()
        p1 = sim.enable_profiling()
        p2 = sim.enable_profiling()
        assert p1 is p2

    def test_custom_profiler_accepted(self):
        profiler = HostProfiler()
        sim = Simulator(profile=profiler)
        assert sim.profiler is profiler

    def test_summary_and_render(self):
        result = _example1(profile=True)
        profiler = result.machine.sim.profiler
        summary = profiler.summary(result.stats)
        assert summary["cycles"] == result.cycles
        assert summary["wall_seconds"] > 0
        assert summary["instructions_retired"] > 0
        text = profiler.render(result.stats)
        assert "host profile" in text
        assert "Processor" in text


class TestHeartbeat:
    def test_heartbeat_fires_at_interval(self):
        beats = []
        profiler = HostProfiler(heartbeat=beats.append, heartbeat_cycles=10)
        sim = Simulator(profile=profiler)
        spinner = Spinner(35)
        sim.register(spinner)
        sim.run(until=spinner.done, deadlock_check=False)
        assert [hb.cycle for hb in beats] == [10, 20, 30]
        for hb in beats:
            assert hb.wall_seconds >= 0.0
            assert hb.cycles_per_second >= 0.0
            assert hb.event_queue_depth == 0
            assert "cycle" in hb.describe()

    def test_bad_heartbeat_interval_rejected(self):
        with pytest.raises(ValueError):
            HostProfiler(heartbeat_cycles=0)

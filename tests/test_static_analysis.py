"""Acceptance tests for the static race & ordering analyzer.

The acceptance triangle from the issue:

* Dekker and Example 1 are flagged racy under the relaxed models, with
  fence suggestions that provably restore SC;
* the properly synchronized producer/consumer pair is race-free;
* the static prediction covers everything the dynamic Section 6
  detector flags on the same litmus suite (cross-validation).
"""

from pathlib import Path

import pytest

from repro.analysis.static import analyze_programs, apply_fence_suggestions
from repro.analysis.static.cli import selfcheck
from repro.consistency import PC, RC, SC, WC
from repro.consistency.litmus import (
    STANDARD_TESTS,
    cross_validate_suite,
    message_passing_sync,
    sb_with_sync,
    store_buffering,
)
from repro.isa import ProgramBuilder, assemble
from repro.system import run_workload

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "asm"
RELAXED = [PC, WC, RC]


def load_examples(*names):
    return [assemble((EXAMPLES / name).read_text()) for name in names]


# ----------------------------------------------------------------------
# Dekker
# ----------------------------------------------------------------------

class TestDekker:
    def programs(self):
        return load_examples("dekker.s", "dekker_mirror.s")

    def test_clean_under_sc(self):
        report = analyze_programs(self.programs(), SC)
        assert report.sc_guaranteed
        assert not report.races()

    @pytest.mark.parametrize("model", RELAXED, ids=lambda m: m.name)
    def test_racy_under_relaxed_models(self, model):
        report = analyze_programs(self.programs(), model)
        assert report.races(), report.render()
        assert not report.sc_guaranteed
        assert report.fence_suggestions()

    @pytest.mark.parametrize("model", RELAXED, ids=lambda m: m.name)
    def test_suggested_fences_restore_sc(self, model):
        programs = self.programs()
        report = analyze_programs(programs, model)
        patched = apply_fence_suggestions(programs,
                                          report.fence_suggestions())
        assert analyze_programs(patched, model).sc_guaranteed

    def test_suggested_fences_fix_the_machine_too(self):
        """The fix is not just on paper: running the patched programs on
        the detailed WC machine never shows the Dekker relaxation."""
        programs = self.programs()
        report = analyze_programs(programs, WC)
        patched = apply_fence_suggestions(programs,
                                          report.fence_suggestions())
        for skew in ((0, 0), (0, 25), (25, 0), (7, 3)):
            skewed = []
            for cpu, prog in enumerate(patched):
                b = ProgramBuilder()
                if skew[cpu]:
                    b.mov_imm("r20", 0)
                    for _ in range(skew[cpu]):
                        b.add_imm("r20", "r20", 1)
                for instr in prog.instructions:
                    b.emit(instr)
                skewed.append(b.build())
            result = run_workload(skewed, model=WC, miss_latency=40,
                                  initial_memory={0x100: 0, 0x110: 0},
                                  max_cycles=500_000)
            r1 = [result.machine.reg(c, "r1") for c in range(2)]
            assert r1 != [0, 0], f"Dekker outcome survived fences, skew {skew}"


# ----------------------------------------------------------------------
# Example 1 (the paper's optimistic lock)
# ----------------------------------------------------------------------

class TestExample1:
    def programs(self):
        return load_examples("example1.s", "example1.s")

    @pytest.mark.parametrize("model", RELAXED, ids=lambda m: m.name)
    def test_flagged_racy_with_ineffective_lock_warning(self, model):
        report = analyze_programs(self.programs(), model)
        assert report.races(), report.render()
        assert report.by_kind("ineffective-sync")

    @pytest.mark.parametrize("model", [WC, RC], ids=lambda m: m.name)
    def test_overlapping_writes_break_sc(self, model):
        assert not analyze_programs(self.programs(), model).sc_guaranteed

    def test_pc_keeps_sc_despite_the_race(self):
        """PC only relaxes W->R, so the critical-section writes stay in
        program order: the race is real but every execution is SC."""
        report = analyze_programs(self.programs(), PC)
        assert report.races()
        assert report.sc_guaranteed

    @pytest.mark.parametrize("model", RELAXED, ids=lambda m: m.name)
    def test_suggested_fences_restore_sc(self, model):
        programs = self.programs()
        report = analyze_programs(programs, model)
        patched = apply_fence_suggestions(programs,
                                          report.fence_suggestions())
        assert analyze_programs(patched, model).sc_guaranteed


# ----------------------------------------------------------------------
# Producer / consumer with real synchronization
# ----------------------------------------------------------------------

class TestProducerConsumer:
    @pytest.mark.parametrize("model", [SC] + RELAXED, ids=lambda m: m.name)
    def test_race_free(self, model):
        programs = load_examples("producer.s", "consumer.s")
        report = analyze_programs(programs, model)
        assert not report.races(), report.render()


# ----------------------------------------------------------------------
# Litmus integration: op "F", with_fences, to_programs
# ----------------------------------------------------------------------

class TestLitmusFences:
    @pytest.mark.parametrize("model", RELAXED, ids=lambda m: m.name)
    def test_with_fences_forbids_dekker_outcome_in_checker(self, model):
        sb = store_buffering()
        bad = (("r0", 0), ("r1", 0))
        assert bad in sb.outcomes(model)
        assert bad not in sb.with_fences().outcomes(model)

    def test_with_fences_analyzer_agrees(self):
        sb = store_buffering()
        plain, _ = sb.to_programs()
        fenced, _ = sb.with_fences().to_programs()
        assert not analyze_programs(plain, WC).sc_guaranteed
        assert analyze_programs(fenced, WC).sc_guaranteed

    def test_to_programs_outcome_matches_audit_slots(self):
        test = message_passing_sync()
        programs, audit_map = test.to_programs()
        assert set(audit_map) == {"r0", "r1"}
        result = run_workload(
            programs, model=RC, miss_latency=40,
            initial_memory={a: 0 for a in test.addresses().values()},
            max_cycles=500_000)
        outcome = tuple(sorted((r, result.machine.read_word(s))
                               for r, s in audit_map.items()))
        assert outcome in test.outcomes(RC)

    def test_fence_mnemonic_assembles(self):
        prog = assemble("fence\nfence 0x200\nhalt")
        assert prog.instructions[0].acquire and prog.instructions[0].release
        assert prog.instructions[1].offset == 0x200

    def test_builder_fence_orders_everything(self):
        prog = (ProgramBuilder()
                .store_imm(1, addr=0x100)
                .fence()
                .load("r1", addr=0x110)
                .build())
        report = analyze_programs([prog, prog], WC)
        # a single thread pair writing/reading different lines through a
        # fence: the W->R reordering is gone, so po is fully enforced
        assert all(report.po_fully_enforced)


# ----------------------------------------------------------------------
# Cross-validation: static analyzer vs dynamic detector
# ----------------------------------------------------------------------

class TestCrossValidation:
    def test_static_covers_dynamic_on_core_suite(self):
        tests = [STANDARD_TESTS["SB"](), STANDARD_TESTS["MP+sync"](),
                 sb_with_sync()]
        report = cross_validate_suite(tests=tests, models=[SC, WC, RC])
        assert report.ok, report.render()

    def test_dynamic_detector_actually_fires_somewhere(self):
        """Guard against vacuous agreement: the relaxed machine must
        dynamically flag the store-buffering race at least once."""
        report = cross_validate_suite(tests=[STANDARD_TESTS["SB"]()],
                                      models=[WC])
        assert any(case.dynamic_lines for case in report.cases)

    def test_sc_machine_never_flagged(self):
        report = cross_validate_suite(tests=[STANDARD_TESTS["SB"]()],
                                      models=[SC])
        for case in report.cases:
            assert not case.dynamic_lines
            assert not case.static_lines


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_selfcheck_passes_on_bundled_examples(self, capsys):
        assert selfcheck(str(EXAMPLES)) == 0
        assert "self-check passed" in capsys.readouterr().out

    def test_main_renders_report(self, capsys):
        from repro.analysis.static.cli import main
        rc = main([str(EXAMPLES / "dekker.s"), str(EXAMPLES / "dekker_mirror.s"),
                   "--model", "WC", "--fix"])
        out = capsys.readouterr().out
        assert rc == 1          # races found -> linter-style non-zero exit
        assert "data-race" in out
        assert "restores SC" in out

"""Determinism: identical inputs must produce identical simulations.

The conformance fuzzer, the golden-number pins, and corpus replay all
assume the stack is a pure function of (workload, model, config, seed):
same inputs, same cycle counts, same stats, same trace-event stream.
These tests pin that assumption directly, including across the sweep
engine's serial and parallel execution paths.
"""

from repro.consistency import RC, SC
from repro.sim.sweep import derive_seed, run_sweep
from repro.sim.trace import TraceRecorder
from repro.system import run_workload
from repro.verify import check_seed, generate_litmus
from repro.verify.harness import DEFAULT_RUN_CONFIGS, observed_outcome
from repro.workloads import critical_section_workload


def _run_once(model, prefetch, speculation):
    wl = critical_section_workload(num_cpus=2, iterations=2,
                                   shared_counters=3, private=True)
    trace = TraceRecorder()
    result = run_workload(wl.programs, model=model, prefetch=prefetch,
                          speculation=speculation,
                          initial_memory=wl.initial_memory,
                          max_cycles=2_000_000, trace=trace)
    return (result.cycles,
            dict(result.machine.sim.stats.counters()),
            [ev.describe() for ev in trace.events])


class TestSimulatorDeterminism:
    def test_identical_runs_identical_everything(self):
        for model, pf, spec in ((SC, False, False), (SC, True, True),
                                (RC, True, True)):
            cycles_a, stats_a, trace_a = _run_once(model, pf, spec)
            cycles_b, stats_b, trace_b = _run_once(model, pf, spec)
            assert cycles_a == cycles_b
            assert stats_a == stats_b
            assert trace_a == trace_b

    def test_litmus_outcome_reproducible(self):
        test = generate_litmus(derive_seed(7, 0, "fuzz"))
        config = DEFAULT_RUN_CONFIGS[0]
        first = observed_outcome(test, "SC", True, True, config)
        assert all(observed_outcome(test, "SC", True, True, config) == first
                   for _ in range(2))


class TestSweepDeterminism:
    def test_seed_derivation_is_stable(self):
        # same master seed -> same stream, regardless of call order
        forward = [derive_seed(42, i, "fuzz") for i in range(8)]
        backward = [derive_seed(42, i, "fuzz") for i in reversed(range(8))]
        assert forward == list(reversed(backward))

    def test_serial_matches_parallel(self):
        items = [(i, derive_seed(5, i, "fuzz"), {}) for i in range(3)]
        serial = run_sweep(check_seed, items, jobs=1)
        parallel = run_sweep(check_seed, items, jobs=2, chunk_size=1)
        assert [(r.seed, r.num_runs, r.divergences)
                for r in serial.results] == \
               [(r.seed, r.num_runs, r.divergences)
                for r in parallel.results]

    def test_chunking_does_not_change_results(self):
        items = [(i, derive_seed(5, i, "fuzz"), {}) for i in range(4)]
        by_one = run_sweep(check_seed, items, chunk_size=1)
        by_four = run_sweep(check_seed, items, chunk_size=4)
        assert [r.seed for r in by_one.results] == \
               [r.seed for r in by_four.results]
        assert [r.divergences for r in by_one.results] == \
               [r.divergences for r in by_four.results]

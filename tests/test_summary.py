"""Tests for the run-summary digest."""

import pytest

from repro.analysis import summarize, summary_table
from repro.consistency import RC, SC
from repro.system import run_workload
from repro.workloads import critical_section_workload, example1_program


def run_example1(**kw):
    wl = example1_program()
    return run_workload([wl.program], initial_memory=wl.initial_memory,
                        warm_lines=wl.warm_lines, **kw)


class TestSummarize:
    def test_counts_instruction_mix(self):
        result = run_example1(model=SC)
        s = summarize(result)
        cpu = s.cpus[0]
        assert cpu.stores == 3          # write A, write B, unlock
        assert cpu.rmws == 1            # the lock
        assert cpu.instructions_retired > 0

    def test_ipc_and_rates_bounded(self):
        result = run_example1(model=SC)
        s = summarize(result)
        assert 0 < s.total_ipc < 8
        assert 0.0 <= s.hit_rate <= 1.0
        assert s.cycles == result.cycles

    def test_prefetch_shows_in_summary(self):
        base = summarize(run_example1(model=SC))
        pf = summarize(run_example1(model=SC, prefetch=True))
        assert pf.cpus[0].prefetches_issued > base.cpus[0].prefetches_issued

    def test_stall_accounting_differs_by_model(self):
        """SC's store serialization happens upstream (the ROB holds each
        store until the previous completes), so its store-buffer
        arc-stall counter stays at zero; under RC the *release* visibly
        waits in the store buffer for the pipelined writes."""
        sc = summarize(run_example1(model=SC))
        rc = summarize(run_example1(model=RC))
        assert sc.cpus[0].sb_stalls == 0
        assert rc.cpus[0].sb_stalls > 0

    def test_multiprocessor_summary_has_all_cpus(self):
        wl = critical_section_workload(num_cpus=2, iterations=1)
        result = run_workload(wl.programs, model=RC, speculation=True,
                              prefetch=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=2_000_000)
        s = summarize(result)
        assert len(s.cpus) == 2
        assert s.net_messages > 0
        assert s.dir_invals + s.dir_recalls > 0  # the lock line moved around

    def test_squash_overhead_fraction(self):
        wl = critical_section_workload(num_cpus=2, iterations=2)
        result = run_workload(wl.programs, model=SC, speculation=True,
                              prefetch=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=2_000_000)
        s = summarize(result)
        for cpu in s.cpus:
            assert 0.0 <= cpu.squash_overhead() < 1.0


class TestSummaryTable:
    def test_renders_with_header_stats(self):
        result = run_example1(model=SC, prefetch=True)
        text = summary_table(result, title="example1").render()
        assert "example1" in text
        assert "IPC" in text
        assert "hit rate" in text

    def test_cli_summary_flag(self, tmp_path, capsys):
        from repro.run import main
        path = tmp_path / "p.s"
        path.write_text("movi r1, 1\nst r1, 0x40\nhalt\n")
        assert main([str(path), "--summary"]) == 0
        assert "IPC" in capsys.readouterr().out

"""Property-based invariants of the batched lockstep engine.

Lanes are independent simulations: nothing a lane computes may depend
on *which other lanes* share its engine, where it sits in the job
list, how the runner chunks the list, or which backend ran a
neighbouring job.  Hypothesis drives those degrees of freedom:

* **permutation invariance** — shuffling the job list permutes the
  results and changes nothing else;
* **split/pad invariance** — running a job list in one call, in two
  split calls, via a different ``chunk_size``, or padded with extra
  lanes yields identical per-job results;
* **scalar agreement** — a generated litmus test under a drawn
  (model, run-config) leg matches the scalar kernel bit-for-bit
  (cycles, outcomes, full stats snapshot).

Comparisons always include the full stats snapshot, so any lane
cross-talk in the SoA tables (a mask off by one lane, a shared
accumulator) surfaces as a failure here.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.memory.types import CacheConfig
from repro.sim.batch import BatchJob, BatchRunner
from repro.system.machine import run_workload
from repro.verify.generator import GeneratorConfig, generate_litmus
from repro.verify.harness import DEFAULT_RUN_CONFIGS, MODEL_NAMES

from repro.consistency.models import get_model


def make_job(seed: int, model_name: str, rc) -> BatchJob:
    """One conventional harness leg for generated test ``seed``."""
    test = generate_litmus(seed)
    addresses = test.addresses()
    nthreads = len(test.threads)
    skew = tuple(rc.skew[t % len(rc.skew)] for t in range(nthreads))
    programs, audit_map = test.to_programs(delays=skew)
    warm = ()
    if rc.warm_shared:
        warm = tuple((cpu, addr, False) for cpu in range(nthreads)
                     for addr in addresses.values())
    return BatchJob(
        programs=programs, model_name=model_name,
        miss_latency=rc.miss_latency,
        initial_memory={addr: 0 for addr in addresses.values()},
        warm_lines=warm, cache=CacheConfig(line_size=rc.line_size),
        max_cycles=rc.max_cycles,
        key=(seed, model_name, rc.name, sorted(audit_map.values())))


def fingerprint(res):
    """Everything observable about one result (order-independent)."""
    seed, model_name, rc_name, audit = res.job.key
    outcome = tuple(res.read_word(addr) for addr in audit)
    return (seed, model_name, rc_name, res.backend, res.cycles, outcome,
            tuple(sorted(res.stats.snapshot().items())))


job_axis = st.tuples(
    st.integers(min_value=0, max_value=60),
    st.sampled_from(MODEL_NAMES),
    st.integers(min_value=0, max_value=len(DEFAULT_RUN_CONFIGS) - 1),
)


class TestBatchInvariance:
    @given(axes=st.lists(job_axis, min_size=2, max_size=10, unique=True),
           rng_seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_permuting_jobs_permutes_results(self, axes, rng_seed):
        jobs = [make_job(s, m, DEFAULT_RUN_CONFIGS[c]) for s, m, c in axes]
        shuffled = list(jobs)
        random.Random(rng_seed).shuffle(shuffled)
        base = {id(j): fingerprint(r)
                for j, r in zip(jobs, BatchRunner().run(jobs))}
        for job, res in zip(shuffled, BatchRunner().run(shuffled)):
            assert fingerprint(res) == base[id(job)]

    @given(axes=st.lists(job_axis, min_size=2, max_size=10, unique=True),
           cut=st.integers(min_value=0, max_value=10),
           chunk=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_splitting_and_chunking_change_nothing(self, axes, cut, chunk):
        jobs = [make_job(s, m, DEFAULT_RUN_CONFIGS[c]) for s, m, c in axes]
        cut = min(cut, len(jobs))
        base = [fingerprint(r) for r in BatchRunner().run(jobs)]
        runner = BatchRunner()
        split = ([fingerprint(r) for r in runner.run(jobs[:cut])]
                 + [fingerprint(r) for r in runner.run(jobs[cut:])])
        assert split == base
        rechunked = [fingerprint(r)
                     for r in BatchRunner(chunk_size=chunk).run(jobs)]
        assert rechunked == base

    @given(axes=st.lists(job_axis, min_size=1, max_size=6, unique=True),
           pad_seeds=st.lists(st.integers(min_value=61, max_value=90),
                              min_size=1, max_size=6, unique=True))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_padding_with_extra_lanes_changes_nothing(self, axes, pad_seeds):
        jobs = [make_job(s, m, DEFAULT_RUN_CONFIGS[c]) for s, m, c in axes]
        pad = [make_job(s, "SC", DEFAULT_RUN_CONFIGS[0]) for s in pad_seeds]
        base = [fingerprint(r) for r in BatchRunner().run(jobs)]
        padded = [fingerprint(r) for r in BatchRunner().run(jobs + pad)]
        assert padded[:len(jobs)] == base


class TestScalarAgreement:
    @given(seed=st.integers(min_value=0, max_value=500),
           model_name=st.sampled_from(MODEL_NAMES),
           config_index=st.integers(min_value=0,
                                    max_value=len(DEFAULT_RUN_CONFIGS) - 1))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generated_litmus_matches_scalar(self, seed, model_name,
                                             config_index):
        job = make_job(seed, model_name, DEFAULT_RUN_CONFIGS[config_index])
        (res,) = BatchRunner().run([job])
        assert res.backend == "batched"
        ref = run_workload(
            programs=job.programs, model=get_model(job.model_name),
            miss_latency=job.miss_latency,
            initial_memory=job.initial_memory, warm_lines=job.warm_lines,
            cache=job.cache, max_cycles=job.max_cycles)
        assert res.cycles == ref.cycles
        _seed, _model, _rc, audit = job.key
        for addr in audit:
            assert res.read_word(addr) == ref.machine.read_word(addr)
        assert res.stats.snapshot() == ref.stats.snapshot()

"""The shared parallel sweep engine (`repro.sim.sweep`)."""

import io

import pytest

from repro.sim.errors import ConfigurationError
from repro.sim.sweep import (
    ProgressMeter,
    SweepError,
    SweepProgress,
    SweepResult,
    WorkerStats,
    default_chunk_size,
    derive_seed,
    format_duration,
    run_sweep,
    sweep_map,
)


def square(x):
    return x * x


def boom_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(42, 7, "fuzz") == derive_seed(42, 7, "fuzz")

    def test_distinct_across_indices_and_masters(self):
        seeds = {derive_seed(0, i) for i in range(1000)}
        assert len(seeds) == 1000
        assert derive_seed(0, 1) != derive_seed(1, 0)

    def test_stream_label_separates(self):
        assert derive_seed(5, 5) != derive_seed(5, 5, "other")

    def test_nonnegative_63_bit(self):
        for i in range(100):
            s = derive_seed(123, i)
            assert 0 <= s < 2 ** 63

    def test_known_value_pinned(self):
        # replay files store derived seeds; the derivation must never change
        assert derive_seed(0, 0) == 2238038255748445540


class TestSerialSweep:
    def test_results_in_item_order(self):
        res = run_sweep(square, list(range(17)), jobs=1, chunk_size=5)
        assert res.results == [i * i for i in range(17)]
        assert res.jobs == 1

    def test_empty_items(self):
        res = run_sweep(square, [], jobs=1)
        assert res.results == []

    def test_chunk_larger_than_items(self):
        assert sweep_map(square, [1, 2], chunk_size=100) == [1, 4]

    def test_progress_callback_monotone_and_complete(self):
        seen = []
        run_sweep(square, list(range(10)), jobs=1, chunk_size=3,
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(3, 10), (6, 10), (9, 10), (10, 10)]

    def test_worker_stats_accumulate(self):
        res = run_sweep(square, list(range(8)), jobs=1, chunk_size=2)
        assert list(res.workers) == ["serial"]
        assert res.workers["serial"].items == 8
        assert res.workers["serial"].chunks == 4

    def test_error_raises_by_default(self):
        with pytest.raises(ValueError):
            run_sweep(boom_on_three, [1, 2, 3, 4], jobs=1)

    def test_error_recorded_on_request(self):
        res = run_sweep(boom_on_three, [1, 2, 3, 4], jobs=1,
                        on_error="record")
        assert res.results[0:2] == [1, 2]
        assert isinstance(res.results[2], SweepError)
        assert res.results[2].item_index == 2
        assert res.results[3] == 4
        assert len(res.errors) == 1

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(square, [1], jobs=0)
        with pytest.raises(ConfigurationError):
            run_sweep(square, [1], on_error="explode")
        with pytest.raises(ConfigurationError):
            run_sweep(square, [1, 2], chunk_size=0)

    def test_describe_mentions_throughput(self):
        res = run_sweep(square, list(range(4)), jobs=1)
        assert "4 item(s)" in res.describe()


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = sweep_map(square, items, jobs=1)
        parallel = sweep_map(square, items, jobs=2, chunk_size=4)
        assert parallel == serial

    def test_parallel_records_errors(self):
        res = run_sweep(boom_on_three, [3, 5], jobs=2, chunk_size=1,
                        on_error="record")
        assert isinstance(res.results[0], SweepError)
        assert "three" in res.results[0].describe()
        assert res.results[1] == 5

    def test_parallel_worker_stats_cover_all_items(self):
        res = run_sweep(square, list(range(12)), jobs=2, chunk_size=3)
        assert sum(w.items for w in res.workers.values()) == 12


class TestRateGuards:
    def _result(self, elapsed):
        return SweepResult(results=[1, 2, 3], elapsed_seconds=elapsed,
                           jobs=1, chunk_size=1)

    def test_items_per_second_zero_elapsed(self):
        assert self._result(0.0).items_per_second == 0.0

    def test_items_per_second_negative_elapsed(self):
        assert self._result(-1.0).items_per_second == 0.0

    def test_items_per_second_near_zero_elapsed(self):
        # sub-nanosecond elapsed must not report a 10^12/s rate
        assert self._result(1e-12).items_per_second == 0.0

    def test_items_per_second_normal(self):
        assert self._result(1.5).items_per_second == pytest.approx(2.0)

    def test_progress_eta_guards(self):
        p = SweepProgress(done=0, total=10, elapsed_seconds=0.0,
                          items_per_second=0.0, eta_seconds=None,
                          jobs=0, workers={})
        assert p.utilization == 0.0
        assert p.fraction == 0.0
        assert "eta ?" in p.describe()
        empty = SweepProgress(done=0, total=0, elapsed_seconds=0.0,
                              items_per_second=0.0, eta_seconds=None,
                              jobs=1, workers={})
        assert empty.fraction == 1.0

    def test_utilization_clamped_to_one(self):
        workers = {"w": WorkerStats(worker_id="w", busy_seconds=100.0)}
        p = SweepProgress(done=5, total=10, elapsed_seconds=1.0,
                          items_per_second=5.0, eta_seconds=1.0,
                          jobs=2, workers=workers)
        assert p.utilization == 1.0

    def test_format_duration(self):
        assert format_duration(None) == "?"
        assert format_duration(-3.0) == "0s"
        assert format_duration(42.4) == "42s"
        assert format_duration(83) == "1m23s"
        assert format_duration(3 * 3600 + 5 * 60) == "3h05m"

    def test_compute_eta_near_zero_rate_is_unknown(self):
        from repro.sim.sweep import MIN_ELAPSED_SECONDS, MIN_RATE, compute_eta

        # the old guard compared a rate (items/s) against a *time*
        # epsilon (1e-9 s): an EMA rate of 1e-8 items/s slipped through
        # and produced a billions-of-seconds ETA
        assert compute_eta(10, 0.0) is None
        assert compute_eta(10, 1e-8) is None
        assert compute_eta(10, MIN_RATE / 2) is None
        # the dedicated rate epsilon is far above the time epsilon
        assert MIN_RATE > MIN_ELAPSED_SECONDS

    def test_compute_eta_normal_rate(self):
        from repro.sim.sweep import compute_eta

        assert compute_eta(10, 2.0) == pytest.approx(5.0)
        assert compute_eta(0, 2.0) == pytest.approx(0.0)


class TestTelemetry:
    def test_samples_cover_run_and_carry_eta(self):
        samples = []
        run_sweep(square, list(range(10)), jobs=1, chunk_size=3,
                  telemetry=samples.append)
        assert [s.done for s in samples] == [3, 6, 9, 10]
        assert all(s.total == 10 for s in samples)
        assert all(s.jobs == 1 for s in samples)
        final = samples[-1]
        assert final.items_per_second >= 0.0
        assert final.eta_seconds is None or final.eta_seconds >= 0.0
        assert 0.0 <= final.utilization <= 1.0
        assert final.workers["serial"].items == 10

    def test_telemetry_and_progress_both_fire(self):
        ticks, samples = [], []
        run_sweep(square, list(range(4)), jobs=1, chunk_size=2,
                  progress=lambda d, t: ticks.append(d),
                  telemetry=samples.append)
        assert ticks == [2, 4]
        assert [s.done for s in samples] == [2, 4]

    def test_parallel_telemetry_reports_pool_jobs(self):
        samples = []
        run_sweep(square, list(range(8)), jobs=2, chunk_size=2,
                  telemetry=samples.append)
        assert samples[-1].done == 8
        assert samples[-1].jobs == 2
        assert sum(w.items for w in samples[-1].workers.values()) == 8

    def test_progress_meter_renders_line(self):
        stream = io.StringIO()
        meter = ProgressMeter(label="demo", stream=stream)
        run_sweep(square, list(range(6)), jobs=1, chunk_size=2,
                  telemetry=meter)
        meter.finish()
        text = stream.getvalue()
        assert "demo: 6/6 (100%)" in text
        assert text.endswith("\n")
        assert meter.last is not None and meter.last.done == 6

    def test_progress_meter_finish_without_samples_is_silent(self):
        stream = io.StringIO()
        ProgressMeter(stream=stream).finish()
        assert stream.getvalue() == ""


class TestChunkSizing:
    def test_default_targets_four_chunks_per_worker(self):
        assert default_chunk_size(160, 4) == 10

    def test_never_below_one(self):
        assert default_chunk_size(2, 8) == 1
        assert default_chunk_size(0, 4) == 1


class TestCampaignTelemetry:
    """Sweep instrumentation via `repro.obs.telemetry` (off by default)."""

    def test_queue_wait_zero_when_telemetry_off(self):
        samples = []
        run_sweep(square, list(range(8)), jobs=2, chunk_size=2,
                  telemetry=samples.append)
        assert all(s.queue_wait_seconds == 0.0 for s in samples)

    def test_serial_instrumented_counts_items_and_chunks(self):
        from repro.obs import telemetry as tm
        with tm.collect(process="sweep test") as scope:
            run_sweep(square, list(range(10)), jobs=1, chunk_size=3)
        assert scope.metrics.counter_value("sweep/items") == 10
        assert scope.metrics.counter_value("sweep/chunks") == 4
        names = [s["name"] for s in scope.spans.spans]
        assert "sweep/run" in names
        assert names.count("sweep/chunk") == 4

    def test_parallel_instrumented_merges_worker_spans(self):
        import os

        from repro.obs import telemetry as tm
        from repro.obs.perfetto import validate_trace_events
        with tm.collect(process="sweep test") as scope:
            samples = []
            run_sweep(square, list(range(12)), jobs=2, chunk_size=3,
                      telemetry=samples.append)
        assert scope.metrics.counter_value("sweep/items") == 12
        assert scope.metrics.gauge_value("sweep/queue_wait_seconds") >= 0.0
        assert samples[-1].queue_wait_seconds >= 0.0
        events = scope.spans.to_trace_events()
        assert validate_trace_events({"traceEvents": events}) == []
        chunk_pids = {e["pid"] for e in events
                      if e.get("ph") == "X" and e["name"] == "sweep/chunk"}
        assert chunk_pids, "worker chunk spans must ship back to the parent"
        assert os.getpid() not in chunk_pids

    def test_meter_non_tty_prints_single_summary_line(self):
        stream = io.StringIO()  # isatty() is False: no live \r updates
        meter = ProgressMeter(label="demo", stream=stream)
        run_sweep(square, list(range(6)), jobs=1, chunk_size=2,
                  telemetry=meter)
        meter.finish()
        text = stream.getvalue()
        assert "\r" not in text
        assert text.count("\n") == 1
        assert "demo: 6/6 (100%)" in text
        assert " in " in text

    def test_meter_summary_mentions_queue_wait_when_nonzero(self):
        stream = io.StringIO()
        meter = ProgressMeter(label="demo", stream=stream)
        meter(SweepProgress(done=4, total=4, elapsed_seconds=1.0,
                            items_per_second=4.0, eta_seconds=0.0, jobs=2,
                            workers={}, queue_wait_seconds=0.75))
        meter.finish()
        assert "max queue wait 0.75s" in stream.getvalue()

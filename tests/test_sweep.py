"""The shared parallel sweep engine (`repro.sim.sweep`)."""

import pytest

from repro.sim.errors import ConfigurationError
from repro.sim.sweep import (
    SweepError,
    default_chunk_size,
    derive_seed,
    run_sweep,
    sweep_map,
)


def square(x):
    return x * x


def boom_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(42, 7, "fuzz") == derive_seed(42, 7, "fuzz")

    def test_distinct_across_indices_and_masters(self):
        seeds = {derive_seed(0, i) for i in range(1000)}
        assert len(seeds) == 1000
        assert derive_seed(0, 1) != derive_seed(1, 0)

    def test_stream_label_separates(self):
        assert derive_seed(5, 5) != derive_seed(5, 5, "other")

    def test_nonnegative_63_bit(self):
        for i in range(100):
            s = derive_seed(123, i)
            assert 0 <= s < 2 ** 63

    def test_known_value_pinned(self):
        # replay files store derived seeds; the derivation must never change
        assert derive_seed(0, 0) == 2238038255748445540


class TestSerialSweep:
    def test_results_in_item_order(self):
        res = run_sweep(square, list(range(17)), jobs=1, chunk_size=5)
        assert res.results == [i * i for i in range(17)]
        assert res.jobs == 1

    def test_empty_items(self):
        res = run_sweep(square, [], jobs=1)
        assert res.results == []

    def test_chunk_larger_than_items(self):
        assert sweep_map(square, [1, 2], chunk_size=100) == [1, 4]

    def test_progress_callback_monotone_and_complete(self):
        seen = []
        run_sweep(square, list(range(10)), jobs=1, chunk_size=3,
                  progress=lambda done, total: seen.append((done, total)))
        assert seen == [(3, 10), (6, 10), (9, 10), (10, 10)]

    def test_worker_stats_accumulate(self):
        res = run_sweep(square, list(range(8)), jobs=1, chunk_size=2)
        assert list(res.workers) == ["serial"]
        assert res.workers["serial"].items == 8
        assert res.workers["serial"].chunks == 4

    def test_error_raises_by_default(self):
        with pytest.raises(ValueError):
            run_sweep(boom_on_three, [1, 2, 3, 4], jobs=1)

    def test_error_recorded_on_request(self):
        res = run_sweep(boom_on_three, [1, 2, 3, 4], jobs=1,
                        on_error="record")
        assert res.results[0:2] == [1, 2]
        assert isinstance(res.results[2], SweepError)
        assert res.results[2].item_index == 2
        assert res.results[3] == 4
        assert len(res.errors) == 1

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(square, [1], jobs=0)
        with pytest.raises(ConfigurationError):
            run_sweep(square, [1], on_error="explode")
        with pytest.raises(ConfigurationError):
            run_sweep(square, [1, 2], chunk_size=0)

    def test_describe_mentions_throughput(self):
        res = run_sweep(square, list(range(4)), jobs=1)
        assert "4 item(s)" in res.describe()


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = sweep_map(square, items, jobs=1)
        parallel = sweep_map(square, items, jobs=2, chunk_size=4)
        assert parallel == serial

    def test_parallel_records_errors(self):
        res = run_sweep(boom_on_three, [3, 5], jobs=2, chunk_size=1,
                        on_error="record")
        assert isinstance(res.results[0], SweepError)
        assert "three" in res.results[0].describe()
        assert res.results[1] == 5

    def test_parallel_worker_stats_cover_all_items(self):
        res = run_sweep(square, list(range(12)), jobs=2, chunk_size=3)
        assert sum(w.items for w in res.workers.values()) == 12


class TestChunkSizing:
    def test_default_targets_four_chunks_per_worker(self):
        assert default_chunk_size(160, 4) == 10

    def test_never_below_one(self):
        assert default_chunk_size(2, 8) == 1
        assert default_chunk_size(0, 4) == 1

"""Focused tests of load/store-unit mechanics (Figure 4's components)."""

import pytest

from repro.consistency import PC, RC, RCSC, SC, WC
from repro.cpu import ProcessorConfig
from repro.isa import ProgramBuilder, assemble
from repro.system import run_workload


def run1(program, **kw):
    kw.setdefault("max_cycles", 300_000)
    return run_workload([program], **kw)


class TestStoreForwarding:
    def test_forward_waits_for_store_value(self):
        """A load matching a store whose data is still being computed
        must wait for the value, then forward."""
        p = assemble("""
            ld   r1, 0x40        # long-latency producer of the store value
            st   r1, 0x80
            ld   r2, 0x80        # must observe r1's value via forwarding
            halt
        """)
        r = run1(p, model=RC, speculation=True, initial_memory={0x40: 33})
        assert r.machine.reg(0, "r2") == 33

    def test_youngest_matching_store_wins(self):
        p = assemble("""
            movi r1, 1
            movi r2, 2
            st   r1, 0x40
            st   r2, 0x40
            ld   r3, 0x40
            halt
        """)
        r = run1(p, model=RC, speculation=True)
        assert r.machine.reg(0, "r3") == 2

    def test_no_forwarding_across_different_addresses(self):
        p = assemble("""
            movi r1, 5
            st   r1, 0x40
            ld   r2, 0x44      # same line, different word
            halt
        """)
        r = run1(p, model=RC, speculation=True, initial_memory={0x44: 9})
        assert r.machine.reg(0, "r2") == 9

    def test_forward_counts_in_stats(self):
        p = assemble("movi r1, 3\nst r1, 0x40\nld r2, 0x40\nhalt")
        r = run1(p, model=RC, speculation=True)
        assert r.counter("cpu0/lsu/store_forwards") == 1


class TestConsistencyStallAccounting:
    def make_two_loads(self):
        return (ProgramBuilder()
                .load("r1", addr=0x40, tag="ld1")
                .load("r2", addr=0x80, tag="ld2")
                .build())

    def test_sc_baseline_stalls_second_load(self):
        r = run1(self.make_two_loads(), model=SC)
        assert r.counter("cpu0/lsu/rs_consistency_stalls") > 0

    def test_rc_baseline_does_not_stall_plain_loads(self):
        r = run1(self.make_two_loads(), model=RC)
        assert r.counter("cpu0/lsu/rs_consistency_stalls") == 0

    def test_speculation_eliminates_rs_stalls(self):
        r = run1(self.make_two_loads(), model=SC, speculation=True)
        assert r.counter("cpu0/lsu/rs_consistency_stalls") == 0

    def test_sc_store_buffer_serializes(self):
        p = (ProgramBuilder()
             .store_imm(1, addr=0x40)
             .store_imm(2, addr=0x80)
             .build())
        r_sc = run1(p, model=SC)
        r_rc = run1(p, model=RC)
        assert r_sc.cycles > r_rc.cycles + 80  # ~one extra serialized miss


class TestModelSpecificTiming:
    def two_loads_after_acquire(self):
        return (ProgramBuilder()
                .lock_optimistic(addr=0x10)
                .load("r1", addr=0x40)
                .load("r2", addr=0x80)
                .build())

    def test_wc_and_rc_pipeline_after_acquire(self):
        r_wc = run1(self.two_loads_after_acquire(), model=WC)
        r_sc = run1(self.two_loads_after_acquire(), model=SC)
        assert r_wc.cycles < r_sc.cycles - 50

    def test_rcsc_orders_release_acquire(self):
        """RCsc delays an acquire for a previous release; RCpc does not."""
        p = (ProgramBuilder()
             .release_store_imm(1, addr=0x40, tag="rel")
             .rmw("r1", addr=0x80, op="ts", acquire=True, tag="acq")
             .build())
        r_pc = run1(p, model=RC)
        r_sc_variant = run1(p, model=RCSC)
        assert r_sc_variant.cycles > r_pc.cycles + 50

    def test_pc_serializes_store_store(self):
        p = (ProgramBuilder()
             .store_imm(1, addr=0x40)
             .store_imm(2, addr=0x80)
             .build())
        r_pc = run1(p, model=PC)
        r_rc = run1(p, model=RC)
        assert r_pc.cycles > r_rc.cycles + 80


class TestGenerationAndReissue:
    def test_inflight_load_reissued_with_fresh_value(self):
        """Section 4.2's second correction case: a coherence event for
        a load *not yet done* reissues just that load — no rollback.

        (With our FIFO channels and blocking directory, an invalidation
        can only beat a load's data while the load is still queued at
        the cache port, so the scenario saturates the port with filler
        loads and lands the remote write inside that window.)"""
        from repro.memory import LatencyConfig
        from repro.system.machine import MachineConfig, Multiprocessor

        b = ProgramBuilder()
        b.lock_optimistic(addr=0x10, tag="acq")
        for i in range(8):
            b.load(f"r{2 + (i % 6)}", addr=0x1000 + 16 * i, tag=f"fill{i}")
        b.load("r1", addr=0x40, tag="target")
        program = b.build()

        config = MachineConfig(model=SC, enable_speculation=True,
                               latencies=LatencyConfig.from_miss_latency(12))
        machine = Multiprocessor([program], config, extra_agents=1)
        machine.init_memory({0x10: 0, 0x40: 1})
        machine.warm(0, 0x40, exclusive=False)
        machine.agents[0].write_at(1, 0x40, 2)
        machine.run(max_cycles=100_000)

        stats = machine.sim.stats
        assert stats.counter("cpu0/slb/reissues").value == 1
        assert stats.counter("cpu0/slb/squashes").value == 0  # no rollback
        assert machine.reg(0, "r1") == 2  # the fresh value


class TestPrefetcherDetails:
    def test_prefetch_candidates_cover_store_buffer(self):
        p = (ProgramBuilder()
             .lock_optimistic(addr=0x10)
             .store_imm(1, addr=0x40)
             .store_imm(2, addr=0x80)
             .build())
        r = run1(p, model=SC, prefetch=True)
        assert r.counter("cpu0/prefetcher/exclusive") >= 2

    def test_prefetcher_respects_bandwidth_config(self):
        p = (ProgramBuilder()
             .lock_optimistic(addr=0x10)
             .store_imm(1, addr=0x40)
             .store_imm(2, addr=0x80)
             .store_imm(3, addr=0xc0)
             .build())
        r = run1(p, model=SC, prefetch=True,
                 processor=ProcessorConfig(prefetches_per_cycle=1))
        # all three lines still get prefetched, just one per cycle
        assert r.counter("cpu0/prefetcher/issued") >= 3

    def test_software_prefetch_is_architecturally_silent(self):
        p = assemble("pf 0x40\npf.x 0x80\nmovi r1, 1\nhalt")
        r = run1(p, model=SC)
        assert r.machine.reg(0, "r1") == 1
        assert r.machine.read_word(0x40) == 0

    def test_software_prefetch_warms_cache(self):
        from repro.memory import LineState
        p = assemble("pf.x 0x40\nhalt")
        r = run1(p, model=SC)
        cache = r.machine.fabric.caches[0]
        assert cache.line_state(0x40) is LineState.MODIFIED

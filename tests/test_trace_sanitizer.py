"""Tests for the trace-invariant sanitizer.

Positive: real runs — including the Figure 5 rollback scenario, whose
trace contains a squashed and re-issued speculative load — must pass
clean.  Negative: corrupted streams must fail loudly, invariant by
invariant.
"""

import pytest

from repro.analysis.static import sanitize_trace
from repro.consistency import PC, RC, SC, WC
from repro.isa import ProgramBuilder
from repro.sim.trace import TraceEvent, TraceRecorder
from repro.workloads.figure5 import run_figure5


def ev(cycle, source, kind, **detail):
    return TraceEvent(cycle=cycle, source=source, kind=kind, detail=detail)


class TestCleanRuns:
    def test_figure5_trace_is_clean(self):
        """The paper's rollback scenario: the speculative load of D is
        hit by an invalidation and re-executed.  The sanitizer must see
        the correction and stay silent."""
        result = run_figure5()
        kinds = {e.kind for e in result.trace.events}
        assert "slb_insert" in kinds and "retire" in kinds, \
            "instrumentation missing: sanitizer would be vacuous"
        report = sanitize_trace(result.trace, model=SC)
        assert report.ok, report.render()
        assert report.events_checked > 30

    @pytest.mark.parametrize("model", [SC, PC, WC, RC], ids=lambda m: m.name)
    def test_producer_consumer_clean_under_all_models(self, model,
                                                      sanitized_run):
        producer = (ProgramBuilder()
                    .store_imm(42, addr=0x40, tag="data")
                    .release_store_imm(1, addr=0x80, tag="flag")
                    .build())
        consumer = (ProgramBuilder()
                    .spin_until_set(addr=0x80, tag="wait")
                    .load("r5", addr=0x40, tag="read data")
                    .build())
        result = sanitized_run([producer, consumer], model,
                               speculation=True, prefetch=True,
                               max_cycles=500_000)
        assert result.machine.reg(1, "r5") == 42
        assert result.sanitizer_report.ok

    def test_relaxed_models_skip_store_serialization(self):
        report = sanitize_trace([], model=RC)
        assert any("pipelines stores" in n for n in report.notes)
        assert not sanitize_trace([], model=SC).notes


class TestInjectedViolations:
    def test_out_of_order_retirement_fails_loudly(self):
        """The issue's named negative test: take a real trace and swap
        two retirement events of one CPU."""
        trace = run_figure5().trace
        retires = [i for i, e in enumerate(trace.events)
                   if e.kind == "retire" and e.source == "cpu0"]
        assert len(retires) >= 2
        events = list(trace.events)
        i, j = retires[0], retires[1]
        events[i], events[j] = events[j], events[i]
        report = sanitize_trace(events, model=SC)
        assert not report.ok
        assert report.by_invariant("retire-order")
        assert "left program order" in report.render()
        with pytest.raises(AssertionError):
            report.raise_if_failed()

    def test_unbound_load_retirement(self):
        report = sanitize_trace(
            [ev(1, "cpu0", "retire", seq=1, pc=0, op="load", bound=False)])
        assert report.by_invariant("unbound-retire")

    def test_store_buffer_not_fifo(self):
        report = sanitize_trace(
            [ev(1, "cpu0/lsu", "store_issue", seq=5, addr=0, line=0),
             ev(2, "cpu0/lsu", "store_issue", seq=3, addr=4, line=1)],
            model=RC)
        assert report.by_invariant("sb-fifo")

    def test_overlapping_stores_flagged_under_sc_not_rc(self):
        events = [ev(1, "cpu0/lsu", "store_issue", seq=1, addr=0, line=0),
                  ev(2, "cpu0/lsu", "store_issue", seq=2, addr=4, line=1),
                  ev(3, "cpu0/lsu", "store_complete", seq=1, addr=0),
                  ev(4, "cpu0/lsu", "store_complete", seq=2, addr=4)]
        assert sanitize_trace(events, model=SC).by_invariant("sb-serial")
        assert sanitize_trace(events, model=PC).by_invariant("sb-serial")
        assert sanitize_trace(events, model=RC).ok

    def test_speculative_load_retires_uncorrected(self):
        report = sanitize_trace(
            [ev(1, "cpu0/lsu", "slb_insert", seq=7, tag=None, line=4),
             ev(1, "cpu0/lsu", "slb_insert", seq=9, tag=None, line=5),
             ev(2, "cache0", "inval", line=5),
             ev(3, "cpu0/lsu", "slb_retire", seq=7),
             ev(4, "cpu0/lsu", "slb_retire", seq=9)])
        assert report.by_invariant("spec-load-correction")

    def test_speculative_load_reissued_is_fine(self):
        report = sanitize_trace(
            [ev(1, "cpu0/lsu", "slb_insert", seq=7, tag=None, line=4),
             ev(1, "cpu0/lsu", "slb_insert", seq=9, tag=None, line=5),
             ev(2, "cache0", "inval", line=5),
             ev(3, "cpu0/lsu", "slb_reissue", seq=9),
             ev(4, "cpu0/lsu", "slb_retire", seq=7),
             ev(5, "cpu0/lsu", "slb_retire", seq=9)])
        assert report.ok

    def test_head_speculative_entry_is_exempt(self):
        """Footnote 4: the buffer's head may consume the old value —
        the access could have performed at this moment anyway."""
        report = sanitize_trace(
            [ev(1, "cpu0/lsu", "slb_insert", seq=7, tag=None, line=4),
             ev(2, "cache0", "inval", line=4),
             ev(3, "cpu0/lsu", "slb_retire", seq=7)])
        assert report.ok

    def test_squash_clears_pending_correction(self):
        report = sanitize_trace(
            [ev(1, "cpu0/lsu", "slb_insert", seq=9, tag=None, line=5),
             ev(1, "cpu0/lsu", "slb_insert", seq=11, tag=None, line=6),
             ev(2, "cache0", "inval", line=6),
             ev(3, "cpu0", "squash", from_seq=10),
             ev(4, "cpu0/lsu", "slb_retire", seq=9)])
        assert report.ok

    def test_two_modified_owners(self):
        report = sanitize_trace(
            [ev(1, "cache0", "fill", line=4, state="M"),
             ev(2, "cache1", "fill", line=4, state="M")])
        assert report.by_invariant("single-owner")

    def test_ownership_handoff_is_fine(self):
        report = sanitize_trace(
            [ev(1, "cache0", "fill", line=4, state="M"),
             ev(2, "cache0", "inval", line=4),
             ev(3, "cache1", "fill", line=4, state="M"),
             ev(4, "cache1", "downgrade", line=4),
             ev(5, "cache0", "fill", line=4, state="S")])
        assert report.ok

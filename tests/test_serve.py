"""Simulation-as-a-service: protocol, store, server, client, loadgen.

The stack's contract has three load-bearing claims, each pinned here:

1. **bit-identical**: a served result equals a direct
   ``run_workload``-based check, whatever executor runs it and whether
   it came from the cache;
2. **content-addressed**: identical requests hit the cache (a full
   resubmit is 100% hits with zero simulator invocations) and the run
   ledger's dedupe stats agree;
3. **paranoid reads**: a poisoned store entry is detected by its
   outcome digest, served as a miss, and healed by re-execution.
"""

import json
import threading

import pytest

from repro.obs import ledger
from repro.obs import telemetry as tm
from repro.serve import (
    ResultStore,
    ServeClient,
    ServeServer,
    ServerThread,
    build_job_mix,
    job_hash,
    make_executor,
    make_job,
    normalize_job,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.client import parse_endpoint
from repro.serve.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    outcome_pairs,
)
from repro.serve.store import STORE_SCHEMA
from repro.verify.harness import RunConfig, observed_outcome


@pytest.fixture
def server(tmp_path):
    """One live in-process server (serial executor) per test."""
    srv = ServeServer(store=ResultStore(str(tmp_path / "store")),
                      executor_kind="serial",
                      ledger_path=str(tmp_path / "ledger.jsonl"))
    handle = ServerThread(srv)
    host, port = handle.start()
    yield srv, host, port
    handle.stop()


def _client(server):
    _, host, port = server
    return ServeClient(host, port)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------

class TestProtocol:
    def test_normalize_fills_defaults(self):
        spec = normalize_job({"test": {"name": "SB"}})
        assert spec["model"] == "SC"
        assert spec["prefetch"] is False and spec["speculation"] is False
        assert spec["run_config"]["miss_latency"] == RunConfig("x").miss_latency

    def test_equivalent_jobs_hash_identically(self):
        defaults = RunConfig("x")
        sparse = {"test": {"name": "MP"}, "model": "WC"}
        explicit = {"schema": "repro-serve-job/1",
                    "test": {"name": "MP"}, "model": "WC",
                    "prefetch": False, "speculation": False,
                    "run_config": {"miss_latency": defaults.miss_latency,
                                   "skew": list(defaults.skew)}}
        assert job_hash(sparse) == job_hash(explicit)

    def test_result_determining_knobs_split_the_hash(self):
        base = {"test": {"name": "SB"}}
        assert job_hash(base) != job_hash({**base, "model": "RC"})
        assert job_hash(base) != job_hash({**base, "prefetch": True})
        assert job_hash(base) != job_hash(
            {**base, "run_config": {"miss_latency": 7}})

    def test_run_config_name_never_splits_the_cache(self):
        a = make_job(test={"name": "SB"}, run_config={"name": "warm"})
        b = make_job(test={"name": "SB"}, run_config={"name": "cold"})
        assert job_hash(a) == job_hash(b)

    def test_inline_litmus_and_seed_specs(self):
        from repro.consistency.litmus import STANDARD_TESTS
        from repro.verify.corpus import litmus_to_dict

        inline = normalize_job(
            {"test": {"litmus": litmus_to_dict(STANDARD_TESTS["SB"]())}})
        assert "litmus" in inline["test"]
        seeded = normalize_job({"test": {"seed": 7}})
        assert seeded["test"]["seed"] == 7
        assert "max_cpus" in seeded["test"]["generator"]

    @pytest.mark.parametrize("bad", [
        {"test": {"name": "nope"}},
        {"test": {"name": "SB", "seed": 1}},
        {"test": {}},
        {"test": {"name": "SB"}, "model": "XYZ"},
        {"test": {"name": "SB"}, "run_config": {"typo_key": 1}},
        {"test": {"name": "SB"}, "run_config": {"skew": []}},
        {"test": {"name": "SB"}, "run_config": {"miss_latency": 0}},
        {"test": {"name": "SB"}, "unknown_top": 1},
        "not an object",
    ])
    def test_bad_jobs_rejected(self, bad):
        with pytest.raises(ProtocolError):
            normalize_job(bad)

    def test_ndjson_framing_round_trips(self):
        msg = {"op": "submit", "id": 3, "job": {"x": [1, 2]}}
        line = encode_message(msg)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode_message(line) == msg

    def test_oversized_frame_rejected(self):
        from repro.serve.protocol import MAX_FRAME_BYTES

        with pytest.raises(ProtocolError):
            decode_message(b"x" * (MAX_FRAME_BYTES + 1))

    def test_parse_endpoint(self):
        assert parse_endpoint("somehost:7719") == ("somehost", 7719)
        assert parse_endpoint("7719") == ("127.0.0.1", 7719)
        with pytest.raises(Exception):
            parse_endpoint("nope")


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------

class TestResultStore:
    def _sha(self, i=0):
        return job_hash(make_job(test={"name": "SB"},
                                 run_config={"skew": [0, i]}))

    def test_miss_then_put_then_hit(self, tmp_path):
        store = ResultStore(str(tmp_path))
        sha = self._sha()
        assert store.get(sha) is None
        store.put(sha, {"r": 1}, {"outcome": [["r0", 1]], "cycles": 5})
        assert store.get(sha) == {"outcome": [["r0", 1]], "cycles": 5}
        assert store.describe()["hits"] == 1
        assert store.describe()["misses"] == 1

    def test_persistence_across_restarts(self, tmp_path):
        sha = self._sha()
        ResultStore(str(tmp_path)).put(sha, {"r": 1},
                                       {"outcome": [], "cycles": 9})
        # a brand-new store object over the same root: same entry
        reopened = ResultStore(str(tmp_path))
        assert reopened.get(sha) == {"outcome": [], "cycles": 9}
        assert reopened.object_count() == 1

    def test_poisoned_entry_detected_and_healed(self, tmp_path):
        store = ResultStore(str(tmp_path))
        sha = self._sha()
        path = store.put(sha, {"r": 1}, {"outcome": [["r0", 1]], "cycles": 5})
        entry = json.loads(open(path).read())
        entry["result"]["cycles"] = 9999  # flip a bit; digest now stale
        with open(path, "w") as fh:
            json.dump(entry, fh)
        assert store.get(sha) is None  # read as a miss, not served
        assert store.poisoned == 1
        # re-execution heals: the fresh put overwrites the bad entry
        store.put(sha, {"r": 1}, {"outcome": [["r0", 1]], "cycles": 5})
        assert store.get(sha) == {"outcome": [["r0", 1]], "cycles": 5}

    def test_unparseable_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        sha = self._sha()
        path = store.put(sha, {}, {"outcome": [], "cycles": 1})
        with open(path, "w") as fh:
            fh.write("{torn")
        assert store.get(sha) is None
        assert store.poisoned == 1

    def test_validate_entry_checks(self):
        result = {"outcome": [["r0", 1]], "cycles": 5}
        good = {"schema": STORE_SCHEMA, "request_sha256": "ab",
                "request": {}, "result": result,
                "outcome_digest": ledger.digest_outcome(result)}
        assert ResultStore.validate_entry(good, "ab") == []
        assert ResultStore.validate_entry(good, "cd") != []  # wrong address
        assert ResultStore.validate_entry({**good, "schema": "x"}, "ab") != []
        assert ResultStore.validate_entry("junk", "ab") != []

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for i in range(3):
            store.put(self._sha(i), {}, {"outcome": [], "cycles": i})
        assert store.clear() == 3
        assert store.object_count() == 0


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------

class TestExecutors:
    def test_all_executors_agree_with_direct_run(self):
        jobs = [normalize_job(j) for j in build_job_mix(6, seed=3)]
        direct = []
        for spec in jobs:
            from repro.consistency.litmus import STANDARD_TESTS

            test = STANDARD_TESTS[spec["test"]["name"]]()
            rc = RunConfig(name="serve", **{
                k: tuple(v) if k == "skew" else v
                for k, v in spec["run_config"].items()})
            direct.append(observed_outcome(
                test, spec["model"], spec["prefetch"], spec["speculation"],
                rc))
        for kind in ("serial", "batched"):
            results = make_executor(kind)(jobs, None)
            assert [outcome_pairs(r) for r in results] == direct, kind

    def test_batched_executor_contains_per_item_failures(self):
        good = normalize_job(make_job(test={"name": "SB"}))
        bad = dict(good)
        bad["model"] = "NOPE"  # normalize would catch it; the executor
        # must contain it per-item instead of sinking the batch
        results = make_executor("batched")([good, bad, good], None)
        assert "error" in results[1]
        assert "error" not in results[0] and "error" not in results[2]
        assert outcome_pairs(results[0]) == outcome_pairs(results[2])


# ----------------------------------------------------------------------
# Server end-to-end
# ----------------------------------------------------------------------

class TestServerEndToEnd:
    def test_served_result_bit_identical_to_direct_run(self, server):
        srv, _, _ = server
        job = make_job(test={"name": "MP"}, model="WC", speculation=True)
        with _client(server) as client:
            served = client.submit(job)
        spec = normalize_job(job)
        from repro.consistency.litmus import STANDARD_TESTS

        rc = RunConfig(name="serve", **{
            k: tuple(v) if k == "skew" else v
            for k, v in spec["run_config"].items()})
        direct = observed_outcome(STANDARD_TESTS["MP"](), "WC", False, True,
                                  rc)
        assert served.outcome() == direct
        # and a cache hit serves the very same bytes
        with _client(server) as client:
            again = client.submit(job)
        assert again.cached and again.result == served.result

    def test_full_resubmit_is_all_hits_with_zero_simulations(self, server):
        srv, _, _ = server
        jobs = build_job_mix(10, seed=5)
        with _client(server) as client:
            first = client.submit_many(jobs)
            assert all(r.ok for r in first)
            sims_after_first = tm.registry().counter_value(
                "serve/simulations")
            second = client.submit_many(jobs)
        assert all(r.cached for r in second)
        assert [r.result for r in second] == [r.result for r in first]
        # zero simulator invocations on the resubmit
        assert tm.registry().counter_value("serve/simulations") == \
            sims_after_first
        assert srv.counters["cache_hits"] >= len(jobs)

    def test_two_concurrent_clients_with_overlapping_sets(self, server):
        srv, host, port = server
        # overlapping mixes: same seed window shifted, plus identical tail
        jobs_a = build_job_mix(8, seed=11)
        jobs_b = build_job_mix(8, seed=11)  # fully overlapping set
        results = {}

        def worker(name, jobs):
            with ServeClient(host, port) as client:
                results[name] = client.submit_many(jobs)

        threads = [threading.Thread(target=worker, args=("a", jobs_a)),
                   threading.Thread(target=worker, args=("b", jobs_b))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.ok for r in results["a"] + results["b"])
        # identical requests must get identical results, whichever
        # client ran first and whichever path (exec/cache/coalesce)
        for ra, rb in zip(results["a"], results["b"]):
            assert ra.request_sha256 == rb.request_sha256
            assert ra.result == rb.result
        # the overlap was served without re-execution: every unique
        # request simulated at most once
        unique = len({r.request_sha256 for r in results["a"]})
        assert srv.counters["executed"] == unique
        assert (srv.counters["cache_hits"] + srv.counters["coalesced"]) >= \
            len(jobs_b)

    def test_ledger_reports_server_dedupe(self, server, tmp_path):
        srv, _, _ = server
        jobs = build_job_mix(6, seed=9)
        with _client(server) as client:
            client.submit_many(jobs)
            client.submit_many(jobs)
        records, skipped = ledger.read_ledger(srv.ledger_path)
        assert skipped == 0
        stats = ledger.ledger_stats(records)
        assert stats["records"] == 2 * len(jobs)
        assert stats["dedupe_hits"] == len(jobs)
        # the determinism sentinel: a cache hit must never look like a
        # nondeterministic re-run
        assert stats["inconsistent_hits"] == 0

    def test_request_log_captures_and_replays(self, server):
        srv, _, _ = server
        jobs = build_job_mix(4, seed=2)
        with _client(server) as client:
            client.submit_many(jobs)
        with open(srv.request_log_path) as fh:
            logged = [json.loads(line) for line in fh]
        assert len(logged) == 4
        assert all("request_sha256" in entry and "job" in entry
                   for entry in logged)
        # replaying the log is a full resubmit: all hits
        with _client(server) as client:
            replayed = client.submit_many([e["job"] for e in logged])
        assert all(r.cached for r in replayed)

    def test_progress_events_stream_to_subscribers(self, server):
        events = []
        with _client(server) as client:
            results = client.submit_many(build_job_mix(5, seed=4),
                                         progress=events.append)
        assert all(r.ok for r in results)
        assert events, "no progress events streamed"
        assert all(e["event"] == "progress" and e["total"] >= 1
                   for e in events)

    def test_bad_submit_gets_error_without_closing_connection(self, server):
        with _client(server) as client:
            bad, good = client.submit_many([
                {"test": {"name": "definitely-not-a-test"}},
                make_job(test={"name": "SB"})])
            assert not bad.ok and "unknown litmus test" in \
                str(bad.error["message"])
            assert good.ok
            # connection still healthy
            assert client.ping() == "repro-serve/1"

    def test_stats_and_metrics_ops(self, server):
        with _client(server) as client:
            client.submit(make_job(test={"name": "SB"}))
            stats = client.stats()
            assert stats["counters"]["requests"] == 1
            assert stats["store"]["objects"] == 1
            prom = client.metrics()
        # the process registry is cumulative across servers, so assert
        # presence, not an exact count (stats() above is per-server)
        assert "repro_serve_requests_total" in prom
        assert "repro_serve_cache_misses_total" in prom

    def test_server_restart_serves_from_persisted_store(self, tmp_path):
        job = make_job(test={"name": "LB"}, model="PC")
        store_root = str(tmp_path / "store")

        def one_server_pass():
            srv = ServeServer(store=ResultStore(store_root), ledger=False)
            handle = ServerThread(srv)
            host, port = handle.start()
            try:
                with ServeClient(host, port) as client:
                    return client.submit(job), srv.counters["executed"]
            finally:
                handle.stop()

        first, executed_first = one_server_pass()
        second, executed_second = one_server_pass()
        assert executed_first == 1 and executed_second == 0
        assert second.cached and second.result == first.result


# ----------------------------------------------------------------------
# verify --server
# ----------------------------------------------------------------------

class TestVerifyThroughServer:
    def test_suite_leg_checks_pass_through_server(self, server):
        from repro.verify.harness import HarnessConfig, check_test
        from repro.consistency.litmus import STANDARD_TESTS

        _, host, port = server
        config = HarnessConfig(models=("SC", "WC"),
                               techniques=((False, False), (True, True)),
                               server=f"{host}:{port}")
        result = check_test(STANDARD_TESTS["SB"](), config)
        assert result.ok
        assert result.num_runs == 2 * 2 * len(config.run_configs)

    def test_fault_with_server_rejected(self, server):
        from repro.sim.errors import ConfigurationError
        from repro.verify.harness import HarnessConfig, check_test
        from repro.consistency.litmus import STANDARD_TESTS

        _, host, port = server
        config = HarnessConfig(server=f"{host}:{port}", fault="slb-deaf")
        with pytest.raises(ConfigurationError):
            check_test(STANDARD_TESTS["SB"](), config)


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------

class TestLoadgen:
    def test_job_mix_is_deterministic(self):
        assert build_job_mix(10, seed=1) == build_job_mix(10, seed=1)
        assert build_job_mix(10, seed=1) != build_job_mix(10, seed=2)

    def test_unique_mix_has_distinct_cache_keys(self):
        shas = [job_hash(j) for j in build_job_mix(40, seed=0, unique=True)]
        assert len(set(shas)) == 40

    def test_percentile(self):
        from repro.serve.loadgen import percentile

        assert percentile([5.0], 50) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_closed_loop_reports(self, server):
        _, host, port = server
        report = run_closed_loop(host, port, build_job_mix(8, seed=6),
                                 clients=2)
        assert report.completed == 8 and report.errors == 0
        pcts = report.latency_percentiles()
        assert 0 < pcts["p50"] <= pcts["p90"] <= pcts["p99"] <= pcts["max"]
        assert report.to_dict()["mode"] == "closed"

    def test_open_loop_reports(self, server):
        _, host, port = server
        report = run_open_loop(host, port, build_job_mix(6, seed=6),
                               rate=500.0)
        assert report.completed == 6 and report.errors == 0
        assert report.latencies and report.to_dict()["mode"] == "open"

    def test_warm_cache_p50_at_least_10x_below_cold(self, server):
        # the acceptance bar for the whole serving stack: answering
        # from the content-addressed store must be an order of
        # magnitude faster than simulating
        srv, host, port = server
        jobs = build_job_mix(12, seed=8)
        cold = run_closed_loop(host, port, jobs, clients=1)
        warm = run_closed_loop(host, port, jobs, clients=1)
        assert warm.cache_hits == len(jobs)
        cold_p50 = cold.latency_percentiles()["p50"]
        warm_p50 = warm.latency_percentiles()["p50"]
        assert warm_p50 * 10 <= cold_p50, (
            f"warm p50 {warm_p50:.6f}s not 10x below cold p50 "
            f"{cold_p50:.6f}s")

"""Integration tests for the coherent memory system (cache + directory).

These drive :class:`LockupFreeCache` instances directly, without a
processor, and check protocol correctness, merging, prefetch semantics,
snoop notification, and timing.
"""

import itertools

import pytest

from repro.memory import (
    AccessKind,
    AccessRequest,
    CacheConfig,
    LatencyConfig,
    LineState,
    SnoopKind,
)
from repro.sim import DeadlockError, Simulator
from repro.system.fabric import MemoryFabric

MISS = 100  # paper's canonical miss latency


class Harness:
    """A fabric plus helpers to issue accesses and wait for completion."""

    def __init__(self, num_cpus=2, cache_config=None, miss_latency=MISS):
        self.sim = Simulator()
        self.fabric = MemoryFabric(
            self.sim,
            num_cpus,
            cache_config=cache_config or CacheConfig(),
            latencies=LatencyConfig.from_miss_latency(miss_latency),
        )
        self._ids = itertools.count(1)
        self.completions = {}  # req_id -> (cycle, value)

    def cache(self, cpu):
        return self.fabric.caches[cpu]

    def request(self, kind, addr, value=None, rmw_op=None):
        rid = next(self._ids)

        def done(req, val):
            self.completions[req.req_id] = (self.sim.cycle, val)

        return AccessRequest(req_id=rid, kind=kind, addr=addr, value=value,
                             rmw_op=rmw_op, callback=done)

    def issue(self, cpu, kind, addr, value=None, rmw_op=None):
        req = self.request(kind, addr, value=value, rmw_op=rmw_op)
        assert self.cache(cpu).access(req), "access not accepted"
        return req

    def wait(self, req, max_cycles=10_000):
        self.sim.run(until=lambda: req.req_id in self.completions,
                     max_cycles=max_cycles, deadlock_check=False)
        return self.completions[req.req_id]

    def wait_all(self, reqs, max_cycles=20_000):
        self.sim.run(
            until=lambda: all(r.req_id in self.completions for r in reqs),
            max_cycles=max_cycles, deadlock_check=False,
        )
        return [self.completions[r.req_id] for r in reqs]

    def settle(self, max_cycles=20_000):
        """Run until the fabric is fully quiescent."""
        self.sim.run(until=self.fabric.is_quiescent, max_cycles=max_cycles,
                     deadlock_check=False)


class TestBasicAccesses:
    def test_load_miss_returns_memory_value(self):
        h = Harness()
        h.fabric.init_memory({0x100: 42})
        req = h.issue(0, AccessKind.LOAD, 0x100)
        cycle, value = h.wait(req)
        assert value == 42
        assert h.cache(0).line_state(0x100) is LineState.SHARED

    def test_clean_load_miss_latency_matches_config(self):
        h = Harness(miss_latency=100)
        req = h.issue(0, AccessKind.LOAD, 0x100)
        cycle, _ = h.wait(req)
        # issued at cycle 0; response event lands at clean_miss cycles
        assert cycle == LatencyConfig.from_miss_latency(100).clean_miss

    def test_load_hit_is_fast(self):
        h = Harness()
        req = h.issue(0, AccessKind.LOAD, 0x100)
        h.wait(req)
        start = h.sim.cycle
        req2 = h.issue(0, AccessKind.LOAD, 0x100)
        cycle, _ = h.wait(req2)
        assert cycle - start == h.fabric.cache_config.hit_latency

    def test_store_miss_gains_ownership(self):
        h = Harness()
        req = h.issue(0, AccessKind.STORE, 0x100, value=7)
        h.wait(req)
        assert h.cache(0).line_state(0x100) is LineState.MODIFIED
        assert h.cache(0).peek_word(0x100) == 7
        assert h.fabric.read_word(0x100) == 7

    def test_store_hit_on_owned_line(self):
        h = Harness()
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=1))
        start = h.sim.cycle
        req = h.issue(0, AccessKind.STORE, 0x100, value=2)
        cycle, _ = h.wait(req)
        assert cycle - start == 1
        assert h.cache(0).peek_word(0x100) == 2

    def test_load_within_same_line_hits(self):
        h = Harness()
        h.fabric.init_memory({0x101: 9})
        h.wait(h.issue(0, AccessKind.LOAD, 0x100))
        start = h.sim.cycle
        cycle, value = h.wait(h.issue(0, AccessKind.LOAD, 0x101))
        assert value == 9 and cycle - start == 1

    def test_rmw_test_and_set(self):
        h = Harness()
        h.fabric.init_memory({0x80: 0})
        cycle, old = h.wait(h.issue(0, AccessKind.RMW, 0x80, value=0, rmw_op="ts"))
        assert old == 0
        assert h.cache(0).peek_word(0x80) == 1
        # second T&S sees it held
        _, old2 = h.wait(h.issue(0, AccessKind.RMW, 0x80, value=0, rmw_op="ts"))
        assert old2 == 1

    def test_rmw_fetch_and_add(self):
        h = Harness()
        h.fabric.init_memory({0x80: 10})
        _, old = h.wait(h.issue(0, AccessKind.RMW, 0x80, value=5, rmw_op="add"))
        assert old == 10
        assert h.cache(0).peek_word(0x80) == 15


class TestCoherence:
    def test_reader_sees_writers_value_via_recall(self):
        h = Harness()
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=99))
        _, value = h.wait(h.issue(1, AccessKind.LOAD, 0x100))
        assert value == 99
        # both copies shared now; memory updated by the recall
        assert h.cache(0).line_state(0x100) is LineState.SHARED
        assert h.cache(1).line_state(0x100) is LineState.SHARED
        assert h.fabric.directory.read_word(0x100) == 99

    def test_write_invalidates_sharers(self):
        h = Harness(num_cpus=3)
        h.wait_all([h.issue(0, AccessKind.LOAD, 0x100), h.issue(1, AccessKind.LOAD, 0x100)])
        h.wait(h.issue(2, AccessKind.STORE, 0x100, value=5))
        assert h.cache(0).line_state(0x100) is LineState.INVALID
        assert h.cache(1).line_state(0x100) is LineState.INVALID
        assert h.cache(2).line_state(0x100) is LineState.MODIFIED

    def test_write_steals_ownership_from_other_writer(self):
        h = Harness()
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=1))
        h.wait(h.issue(1, AccessKind.STORE, 0x100, value=2))
        assert h.cache(0).line_state(0x100) is LineState.INVALID
        assert h.cache(1).line_state(0x100) is LineState.MODIFIED
        assert h.fabric.read_word(0x100) == 2

    def test_upgrade_from_shared(self):
        h = Harness()
        h.wait_all([h.issue(0, AccessKind.LOAD, 0x100), h.issue(1, AccessKind.LOAD, 0x100)])
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=3))
        assert h.cache(0).line_state(0x100) is LineState.MODIFIED
        assert h.cache(1).line_state(0x100) is LineState.INVALID

    def test_invalidation_fires_snoop_listener(self):
        h = Harness()
        events = []
        h.cache(0).register_snoop_listener(lambda kind, line: events.append((kind, line)))
        h.wait(h.issue(0, AccessKind.LOAD, 0x100))
        h.wait(h.issue(1, AccessKind.STORE, 0x100, value=1))
        h.settle()
        line = h.fabric.cache_config.line_addr(0x100)
        assert (SnoopKind.INVALIDATION, line) in events

    def test_sequential_write_read_chain(self):
        """Values propagate through a chain of owners."""
        h = Harness(num_cpus=4)
        for i in range(4):
            h.wait(h.issue(i, AccessKind.STORE, 0x40, value=i + 1))
        _, v = h.wait(h.issue(0, AccessKind.LOAD, 0x40))
        assert v == 4

    def test_false_sharing_invalidation(self):
        """Writes to a different word in the same line still invalidate."""
        h = Harness()
        h.wait(h.issue(0, AccessKind.LOAD, 0x100))
        h.wait(h.issue(1, AccessKind.STORE, 0x101, value=1))  # same line
        assert h.cache(0).line_state(0x100) is LineState.INVALID


class TestMshrMerging:
    def test_two_loads_one_miss(self):
        h = Harness()
        r1 = h.issue(0, AccessKind.LOAD, 0x100)
        h.sim.step()
        r2 = h.issue(0, AccessKind.LOAD, 0x101)  # same line
        (c1, _), (c2, _) = h.wait_all([r1, r2])
        assert h.cache(0).stat_misses.value == 1
        assert h.cache(0).stat_merges.value == 1
        assert abs(c1 - c2) <= 1  # both complete at the fill

    def test_store_merged_onto_shared_miss_upgrades_after_fill(self):
        h = Harness()
        r1 = h.issue(0, AccessKind.LOAD, 0x100)
        h.sim.step()
        r2 = h.issue(0, AccessKind.STORE, 0x100, value=5)
        (c1, _), (c2, _) = h.wait_all([r1, r2])
        assert c2 > c1  # store needed a second (exclusive) transaction
        assert h.cache(0).line_state(0x100) is LineState.MODIFIED
        assert h.cache(0).peek_word(0x100) == 5

    def test_load_merged_onto_exclusive_miss(self):
        h = Harness()
        r1 = h.issue(0, AccessKind.STORE, 0x100, value=5)
        h.sim.step()
        r2 = h.issue(0, AccessKind.LOAD, 0x100)
        results = h.wait_all([r1, r2])
        assert results[1][1] == 5  # load observes the merged store's value

    def test_mshr_exhaustion_rejects_access(self):
        cfg = CacheConfig(mshr_entries=1)
        h = Harness(cache_config=cfg)
        h.issue(0, AccessKind.LOAD, 0x100)
        h.sim.step()
        req = h.request(AccessKind.LOAD, 0x200)
        assert not h.cache(0).access(req)  # different line, MSHRs full


class TestPrefetch:
    def test_read_prefetch_brings_line_shared(self):
        h = Harness()
        assert h.cache(0).prefetch(0x100, exclusive=False)
        h.settle()
        assert h.cache(0).line_state(0x100) is LineState.SHARED
        assert h.cache(0).stat_prefetches.value == 1

    def test_read_exclusive_prefetch_brings_ownership(self):
        h = Harness()
        h.cache(0).prefetch(0x100, exclusive=True)
        h.settle()
        assert h.cache(0).line_state(0x100) is LineState.MODIFIED

    def test_prefetch_discarded_if_line_present(self):
        h = Harness()
        h.wait(h.issue(0, AccessKind.LOAD, 0x100))
        h.cache(0).prefetch(0x100, exclusive=False)
        assert h.cache(0).stat_prefetch_discarded.value == 1
        assert h.cache(0).stat_prefetches.value == 0

    def test_prefetch_discarded_if_mshr_outstanding(self):
        h = Harness()
        h.cache(0).prefetch(0x100, exclusive=False)
        h.sim.step()
        h.cache(0).prefetch(0x100, exclusive=False)
        assert h.cache(0).stat_prefetch_discarded.value == 1

    def test_demand_merges_with_prefetch_and_counts_useful(self):
        h = Harness()
        h.cache(0).prefetch(0x100, exclusive=False)
        h.sim.step()
        req = h.issue(0, AccessKind.LOAD, 0x100)
        cycle, _ = h.wait(req)
        assert h.cache(0).stat_prefetch_useful.value == 1
        # completes when the prefetch returns, not a full miss later
        assert cycle <= LatencyConfig.from_miss_latency(MISS).clean_miss + 1

    def test_store_after_exclusive_prefetch_is_fast(self):
        h = Harness()
        h.cache(0).prefetch(0x100, exclusive=True)
        h.settle()
        start = h.sim.cycle
        cycle, _ = h.wait(h.issue(0, AccessKind.STORE, 0x100, value=1))
        assert cycle - start == 1  # hit on the prefetched exclusive line

    def test_prefetched_line_invalidated_before_use_is_refetched(self):
        """Non-binding property: a stale prefetch never yields stale data."""
        h = Harness()
        h.cache(0).prefetch(0x100, exclusive=False)
        h.settle()
        h.wait(h.issue(1, AccessKind.STORE, 0x100, value=77))  # invalidates P0
        assert h.cache(0).line_state(0x100) is LineState.INVALID
        _, value = h.wait(h.issue(0, AccessKind.LOAD, 0x100))
        assert value == 77

    def test_exclusive_prefetch_upgrade_path(self):
        h = Harness()
        h.wait(h.issue(0, AccessKind.LOAD, 0x100))  # S copy
        h.cache(0).prefetch(0x100, exclusive=True)  # should upgrade
        h.settle()
        assert h.cache(0).line_state(0x100) is LineState.MODIFIED


class TestReplacement:
    def tiny_cache(self):
        # 1 set, 2 ways, line_size 4 -> any 3 distinct lines conflict
        return CacheConfig(num_sets=1, assoc=2, line_size=4)

    def test_eviction_notifies_replacement_snoop(self):
        h = Harness(cache_config=self.tiny_cache())
        events = []
        h.cache(0).register_snoop_listener(lambda k, l: events.append((k, l)))
        for addr in (0x00, 0x10, 0x20):
            h.wait(h.issue(0, AccessKind.LOAD, addr))
        assert any(k is SnoopKind.REPLACEMENT for k, _ in events)

    def test_dirty_eviction_writes_back(self):
        h = Harness(cache_config=self.tiny_cache())
        h.wait(h.issue(0, AccessKind.STORE, 0x00, value=123))
        for addr in (0x10, 0x20):
            h.wait(h.issue(0, AccessKind.LOAD, addr))
        h.settle()
        assert h.fabric.directory.read_word(0x00) == 123
        assert h.cache(0).stat_writebacks.value == 1

    def test_evicted_line_reload_gets_correct_value(self):
        h = Harness(cache_config=self.tiny_cache())
        h.wait(h.issue(0, AccessKind.STORE, 0x00, value=5))
        for addr in (0x10, 0x20):
            h.wait(h.issue(0, AccessKind.LOAD, addr))
        _, value = h.wait(h.issue(0, AccessKind.LOAD, 0x00))
        assert value == 5


class TestUpdateProtocol:
    def update_harness(self, num_cpus=2):
        return Harness(num_cpus=num_cpus,
                       cache_config=CacheConfig(protocol="update"))

    def test_store_updates_sharers_in_place(self):
        h = self.update_harness()
        h.wait_all([h.issue(0, AccessKind.LOAD, 0x100),
                    h.issue(1, AccessKind.LOAD, 0x100)])
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=42))
        # P1's copy stays valid and carries the new value
        assert h.cache(1).line_state(0x100) is LineState.SHARED
        assert h.cache(1).peek_word(0x100) == 42

    def test_update_fires_update_snoop(self):
        h = self.update_harness()
        events = []
        h.cache(1).register_snoop_listener(lambda k, l: events.append(k))
        h.wait_all([h.issue(0, AccessKind.LOAD, 0x100),
                    h.issue(1, AccessKind.LOAD, 0x100)])
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=1))
        h.settle()
        assert SnoopKind.UPDATE in events

    def test_store_without_sharers_completes(self):
        h = self.update_harness()
        _, v = h.wait(h.issue(0, AccessKind.STORE, 0x100, value=9))
        assert h.fabric.directory.read_word(0x100) == 9

    def test_no_invalidation_under_update(self):
        h = self.update_harness()
        h.wait_all([h.issue(0, AccessKind.LOAD, 0x100),
                    h.issue(1, AccessKind.LOAD, 0x100)])
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=1))
        h.settle()
        assert h.cache(1).stat_invals.value == 0


class TestStress:
    def test_many_cpus_many_lines_reach_consistency(self):
        """Pseudo-random store/load mix settles with a coherent final state."""
        import random

        rng = random.Random(1234)
        h = Harness(num_cpus=4)
        reqs = []
        last_store = {}
        order = 0
        for _ in range(120):
            cpu = rng.randrange(4)
            addr = rng.choice([0x10, 0x20, 0x30, 0x40]) + rng.randrange(4)
            if rng.random() < 0.5:
                order += 1
                reqs.append(h.issue(cpu, AccessKind.STORE, addr, value=order))
                last_store[addr] = order
            else:
                reqs.append(h.issue(cpu, AccessKind.LOAD, addr))
            # issue pacing so ports/MSHRs don't reject
            for _ in range(rng.randrange(1, 30)):
                h.sim.step()
        h.wait_all(reqs, max_cycles=200_000)
        h.settle(max_cycles=200_000)
        # single-writer-per-cycle isn't enforced, but the *final* value of
        # each address must be the value of one of the stores to it
        for addr, _ in last_store.items():
            final = h.fabric.read_word(addr)
            stored = [h.completions[r.req_id][1] for r in reqs
                      if r.addr == addr and r.kind is AccessKind.STORE]
            assert final in stored

    def test_no_owner_ever_duplicated(self):
        h = Harness(num_cpus=3)
        h.wait(h.issue(0, AccessKind.STORE, 0x100, value=1))
        h.wait(h.issue(1, AccessKind.STORE, 0x100, value=2))
        h.wait(h.issue(2, AccessKind.STORE, 0x100, value=3))
        h.settle()
        owners = [c for c in h.fabric.caches
                  if c.line_state(0x100) is LineState.MODIFIED]
        assert len(owners) == 1

"""Randomized multiprocessor stress with value-provenance checking.

For each seed we build a random multi-CPU workload (shared locations,
locks, flags), run it under a sampled configuration, and verify global
invariants that must hold under *any* consistency model:

* every value a load returned was either an initial value or a value
  some processor actually stored to that address (no fabrication);
* the final memory value of every address is the value of one of the
  stores to it (or initial, if nobody stored);
* the machine drains (no lost messages or stuck buffers);
* lock-protected counters are exact (mutual exclusion).
"""

import random

import pytest

from repro.consistency import PC, RC, SC, WC
from repro.isa import ProgramBuilder
from repro.system import run_workload

MODELS = [SC, PC, WC, RC]
SHARED = [0x100, 0x110, 0x120, 0x130]


def build_random_workload(rng, num_cpus=2, ops=12):
    """Random store/load mixes over shared lines; each store writes a
    globally unique value so provenance is checkable."""
    programs = []
    stored_values = {addr: {0} for addr in SHARED}  # 0 = initial
    unique = [1]
    load_regs = []
    for cpu in range(num_cpus):
        b = ProgramBuilder()
        last_load_addr = {}  # reg -> address of the LAST load into it
        for i in range(ops):
            addr = rng.choice(SHARED) + rng.randrange(4)
            if rng.random() < 0.45:
                value = unique[0]
                unique[0] += 1
                stored_values.setdefault(addr, {0}).add(value)
                b.mov_imm("r9", value)
                b.store("r9", addr=addr, tag=f"st{cpu}.{i}")
            else:
                reg = f"r{1 + (i % 6)}"
                b.load(reg, addr=addr, tag=f"ld{cpu}.{i}")
                last_load_addr[reg] = addr
        # publish each register's final observation so we can audit it
        for j, (reg, addr) in enumerate(sorted(last_load_addr.items())):
            slot = 0x800 + 0x40 * cpu + 4 * j
            b.store(reg, addr=slot, tag=f"audit{cpu}.{j}")
            load_regs.append((slot, addr))
        programs.append(b.build())
    return programs, stored_values, load_regs


@pytest.mark.parametrize("seed", range(8))
def test_random_sharing_value_provenance(seed):
    rng = random.Random(seed)
    model = rng.choice(MODELS)
    pf = rng.random() < 0.5
    spec = rng.random() < 0.5
    programs, stored_values, audits = build_random_workload(rng)
    result = run_workload(programs, model=model, prefetch=pf,
                          speculation=spec, miss_latency=30,
                          max_cycles=1_000_000)
    machine = result.machine
    # audited load results must be real values for their address
    for slot, addr in audits:
        observed = machine.read_word(slot)
        legal = stored_values.get(addr, {0})
        assert observed in legal, (
            f"seed={seed} {model.name}: load of {addr:#x} returned "
            f"{observed}, never stored there"
        )
    # final memory must hold one of the values actually stored there
    for addr, values in stored_values.items():
        final = machine.read_word(addr)
        assert final in values, (
            f"seed={seed} {model.name}: MEM[{addr:#x}] = {final}, "
            f"but only {sorted(values)} were ever stored there"
        )


@pytest.mark.parametrize("seed", range(4))
def test_random_locked_counters_stay_exact(seed):
    """Random per-seed shapes of the lock/increment workload."""
    rng = random.Random(1000 + seed)
    model = rng.choice(MODELS)
    num_cpus = rng.choice([2, 3])
    iterations = rng.choice([1, 2])
    counters = rng.choice([1, 2])
    from repro.workloads import critical_section_workload

    wl = critical_section_workload(num_cpus=num_cpus, iterations=iterations,
                                   shared_counters=counters)
    result = run_workload(wl.programs, model=model, prefetch=True,
                          speculation=True,
                          initial_memory=wl.initial_memory,
                          max_cycles=5_000_000)
    for addr, expected in wl.expectations:
        assert result.machine.read_word(addr) == expected, (
            f"seed={seed} {model.name} {num_cpus}cpus: mutual exclusion lost"
        )


@pytest.mark.parametrize("seed", range(4))
def test_random_producer_consumer_chains(seed):
    rng = random.Random(2000 + seed)
    model = rng.choice(MODELS)
    chain = rng.choice([2, 3])
    values = tuple(rng.randrange(100) for _ in range(rng.choice([2, 3])))
    from repro.workloads import producer_consumer_workload

    wl = producer_consumer_workload(values=values, chain=chain)
    result = run_workload(wl.programs, model=model,
                          prefetch=rng.random() < 0.5,
                          speculation=rng.random() < 0.5,
                          initial_memory=wl.initial_memory,
                          max_cycles=5_000_000)
    for addr, expected in wl.expectations:
        assert result.machine.read_word(addr) == expected

"""Mini-application kernels: correctness under every configuration."""

import pytest

from repro.consistency import PC, RC, SC, WC
from repro.system import run_workload
from repro.workloads import (
    grid_relaxation_workload,
    reduction_workload,
    work_queue_workload,
)

CONFIGS = [
    ("SC-base", SC, False, False),
    ("SC-both", SC, True, True),
    ("RC-base", RC, False, False),
    ("RC-both", RC, True, True),
]


def check(workload, model, pf, spec, max_cycles=10_000_000):
    result = run_workload(workload.programs, model=model, prefetch=pf,
                          speculation=spec,
                          initial_memory=workload.initial_memory,
                          max_cycles=max_cycles)
    for addr, expected in workload.expectations:
        actual = result.machine.read_word(addr)
        assert actual == expected, (
            f"{workload.name} {model.name}: MEM[{addr:#x}] = {actual}, "
            f"expected {expected}"
        )
    return result


class TestGridRelaxation:
    @pytest.mark.parametrize("name,model,pf,spec", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    def test_correct_under_config(self, name, model, pf, spec):
        check(grid_relaxation_workload(num_cpus=2, cells_per_cpu=2,
                                       phases=2), model, pf, spec)

    def test_three_cpus(self):
        check(grid_relaxation_workload(num_cpus=3, cells_per_cpu=2,
                                       phases=1), RC, True, True)

    def test_techniques_speed_up_sc(self):
        wl = grid_relaxation_workload(num_cpus=2, cells_per_cpu=3, phases=2)
        base = check(wl, SC, False, False)
        wl2 = grid_relaxation_workload(num_cpus=2, cells_per_cpu=3, phases=2)
        both = check(wl2, SC, True, True)
        assert both.cycles < base.cycles


class TestWorkQueue:
    @pytest.mark.parametrize("name,model,pf,spec", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    def test_every_task_processed_once(self, name, model, pf, spec):
        check(work_queue_workload(num_consumers=2, num_tasks=4),
              model, pf, spec)

    def test_single_consumer_drains(self):
        check(work_queue_workload(num_consumers=1, num_tasks=3),
              SC, True, True)

    def test_more_consumers_than_tasks(self):
        check(work_queue_workload(num_consumers=3, num_tasks=2),
              RC, True, True)


class TestReduction:
    @pytest.mark.parametrize("name,model,pf,spec", CONFIGS,
                             ids=[c[0] for c in CONFIGS])
    def test_tree_total_correct(self, name, model, pf, spec):
        check(reduction_workload(num_cpus=4, values_per_cpu=2),
              model, pf, spec)

    def test_two_cpus(self):
        check(reduction_workload(num_cpus=2, values_per_cpu=3),
              RC, True, True)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            reduction_workload(num_cpus=3)

"""Cache-line-size configurability: correctness across geometries."""

import pytest

from repro.consistency import RC, SC
from repro.isa import assemble, interpret
from repro.memory import CacheConfig
from repro.system import run_workload
from repro.workloads import false_sharing_workload

PROGRAM = """
    movi r1, 11
    st   r1, 0x40
    st   r1, 0x41
    ld   r2, 0x40
    ld   r3, 0x41
    ld   r4, 0x48
    rmw.add r5, 0x40, r1
    halt
"""


class TestLineSizes:
    @pytest.mark.parametrize("line_size", [1, 2, 4, 8])
    @pytest.mark.parametrize("spec", [False, True], ids=["base", "spec"])
    def test_results_independent_of_line_size(self, line_size, spec):
        program = assemble(PROGRAM)
        expected = interpret(program, initial_memory={0x48: 9})
        result = run_workload(
            [program], model=SC, prefetch=spec, speculation=spec,
            cache=CacheConfig(line_size=line_size),
            initial_memory={0x48: 9},
        )
        for reg in ("r2", "r3", "r4", "r5"):
            assert result.machine.reg(0, reg) == expected.reg(reg), \
                (line_size, reg)
        assert result.machine.read_word(0x40) == expected.word(0x40)

    def test_single_word_lines_eliminate_false_sharing(self):
        """With 1-word lines, disjoint adjacent counters never interfere
        — the 'packed' layout behaves like the padded one."""
        def run(machine_line_size):
            # the same packed adjacent-word layout, different machine
            # line sizes: 4-word lines share, 1-word lines don't
            wl = false_sharing_workload(num_cpus=2, updates=3, padded=False)
            result = run_workload(wl.programs, model=SC, prefetch=True,
                                  speculation=True,
                                  cache=CacheConfig(line_size=machine_line_size),
                                  initial_memory=wl.initial_memory,
                                  max_cycles=2_000_000)
            for addr, exp in wl.expectations:
                assert result.machine.read_word(addr) == exp
            squashes = sum(result.counter(f"cpu{c}/slb/squashes")
                           for c in range(2))
            return result.cycles, squashes

        packed4_cycles, packed4_squashes = run(4)
        packed1_cycles, packed1_squashes = run(1)
        assert packed1_squashes == 0
        assert packed1_cycles <= packed4_cycles

    @pytest.mark.parametrize("line_size", [2, 8])
    def test_multiprocessor_sharing_across_line_sizes(self, line_size):
        from repro.workloads import critical_section_workload
        wl = critical_section_workload(num_cpus=2, iterations=1)
        result = run_workload(wl.programs, model=RC, prefetch=True,
                              speculation=True,
                              cache=CacheConfig(line_size=line_size),
                              initial_memory=wl.initial_memory,
                              max_cycles=2_000_000)
        for addr, expected in wl.expectations:
            assert result.machine.read_word(addr) == expected

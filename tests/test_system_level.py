"""System-level tests: multi-CPU differential checks, the report CLI,
scaling tables, and experiment-runner coverage."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    barrier_scaling_table,
    cpu_scaling_table,
    detailed_equalization_table,
    figure5_report,
    rmw_handoff_table,
    rollback_cost_table,
    traffic_table,
)
from repro.consistency import RC, SC
from repro.isa import ProgramBuilder, interpret
from repro.system import run_workload


# ----------------------------------------------------------------------
# Multi-CPU differential: disjoint address spaces
# ----------------------------------------------------------------------

ADDR_BASES = (0x1000, 0x2000)
REGS = ["r1", "r2", "r3"]


@st.composite
def disjoint_programs(draw):
    """Two programs over disjoint address ranges."""
    programs = []
    for cpu, base in enumerate(ADDR_BASES):
        b = ProgramBuilder()
        n = draw(st.integers(2, 8))
        for _ in range(n):
            kind = draw(st.sampled_from(["mov", "load", "store", "rmw"]))
            addr = base + 4 * draw(st.integers(0, 3))
            if kind == "mov":
                b.mov_imm(draw(st.sampled_from(REGS)), draw(st.integers(0, 30)))
            elif kind == "load":
                b.load(draw(st.sampled_from(REGS)), addr=addr)
            elif kind == "store":
                b.store(draw(st.sampled_from(REGS)), addr=addr)
            else:
                b.rmw(draw(st.sampled_from(REGS)), addr=addr, op="add",
                      src=draw(st.sampled_from(REGS)))
        programs.append(b.build())
    return programs


class TestMultiCpuDifferential:
    @given(programs=disjoint_programs(),
           model=st.sampled_from([SC, RC]),
           spec=st.booleans())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_disjoint_cpus_match_interpreter(self, programs, model, spec):
        """CPUs over disjoint memory must each behave like the
        sequential interpreter, for any model/technique combination."""
        expected = [interpret(p) for p in programs]
        result = run_workload(programs, model=model, prefetch=spec,
                              speculation=spec, miss_latency=20,
                              max_cycles=300_000)
        for cpu, exp in enumerate(expected):
            for reg in REGS:
                assert result.machine.reg(cpu, reg) == exp.reg(reg), (cpu, reg)
            for addr, value in exp.memory.items():
                assert result.machine.read_word(addr) == value, (cpu, hex(addr))


# ----------------------------------------------------------------------
# Experiment-runner coverage
# ----------------------------------------------------------------------

class TestExperimentRunners:
    def test_figure5_report_pair(self):
        result, table = figure5_report()
        assert result.cycles > 0
        assert len(table.rows) >= 8

    def test_rollback_cost_rows(self):
        table = rollback_cost_table(inval_cycles=(5,))
        assert len(table.rows) == 3
        assert table.rows[0][0].startswith("conventional")

    def test_traffic_table_has_four_configs(self):
        table = traffic_table()
        assert len(table.rows) == 4

    def test_rmw_handoff_all_correct(self):
        table = rmw_handoff_table(iterations=1)
        assert all(row[3] == "yes" for row in table.rows)

    def test_detailed_equalization_contended_variant(self):
        table = detailed_equalization_table(iterations=1, private=False)
        assert "contended" in table.title
        assert len(table.rows) == 4

    def test_cpu_scaling_small(self):
        table = cpu_scaling_table(cpu_counts=(1, 2), iterations=1)
        assert all(row[4] == "yes" for row in table.rows)

    def test_barrier_scaling_small(self):
        table = barrier_scaling_table(cpu_counts=(2,), phases=1)
        assert all(row[4] == "yes" for row in table.rows)


class TestReportCli:
    def test_generate_with_filter(self, capsys):
        from repro.report import generate
        text = generate(["E1"], verbose=False)
        assert "Figure 1" in text
        assert "Example 1" not in text  # filtered out

    def test_main_writes_output_file(self, tmp_path, capsys):
        from repro.report import main
        out = tmp_path / "report.txt"
        assert main(["E1", "--output", str(out), "--quiet"]) == 0
        assert "Figure 1" in out.read_text()
        captured = capsys.readouterr()
        assert "Figure 1" in captured.out

    def test_sections_cover_all_experiment_ids(self):
        from repro.report import SECTIONS
        names = " ".join(name for name, _ in SECTIONS)
        for eid in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                    "E9", "E10", "A1", "A6", "S1"):
            assert eid in names

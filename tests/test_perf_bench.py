"""The continuous-benchmark harness and regression gate (`repro.obs.perf`).

The regression detector is exercised on synthetic trajectories — a
clean improvement, a genuine regression, and a noisy-but-flat series —
because its whole value is *not* firing on ordinary run-to-run jitter
while reliably catching real slowdowns.
"""

import json

import pytest

from repro.obs import cli
from repro.obs.perf import (
    BENCH_SCHEMA,
    CaseSpec,
    default_suite,
    detect_regressions,
    has_regression,
    load_trajectory,
    peak_rss_kb,
    render_record,
    render_verdicts,
    run_case,
    run_suite,
    validate_bench_record,
    write_record,
)


def _fake_case(name, wall, **overrides):
    case = {
        "description": f"synthetic case {name}",
        "wall_seconds": wall,
        "wall_all": [wall],
        "sim_cycles": 1000,
        "instructions": 500,
        "items": 1,
        "kips": 1.0,
        "cycles_per_second": 1000.0,
        "items_per_second": 1.0,
        "peak_rss_kb": 1024,
    }
    case.update(overrides)
    return case


def _fake_record(walls, **overrides):
    """A schema-valid record with the given {case: wall_seconds}."""
    record = {
        "schema": BENCH_SCHEMA,
        "created_utc": "2026-08-05T00:00:00Z",
        "git_sha": "0" * 40,
        "quick": True,
        "repeats": 1,
        "host": {"platform": "synthetic"},
        "cases": {name: _fake_case(name, wall)
                  for name, wall in walls.items()},
    }
    record.update(overrides)
    return record


class TestSchemaValidation:
    def test_valid_record_passes(self):
        assert validate_bench_record(_fake_record({"a": 1.0})) == []

    def test_non_object_rejected(self):
        assert validate_bench_record([1, 2]) != []

    def test_wrong_schema_rejected(self):
        rec = _fake_record({"a": 1.0}, schema="repro-bench/999")
        assert any("schema" in e for e in validate_bench_record(rec))

    def test_missing_case_fields_rejected(self):
        rec = _fake_record({"a": 1.0})
        del rec["cases"]["a"]["kips"]
        del rec["cases"]["a"]["peak_rss_kb"]
        errors = validate_bench_record(rec)
        assert any("kips" in e for e in errors)
        assert any("peak_rss_kb" in e for e in errors)

    def test_negative_wall_rejected(self):
        rec = _fake_record({"a": -0.5})
        assert any("wall_seconds" in e for e in validate_bench_record(rec))

    def test_empty_cases_rejected(self):
        assert any("empty" in e
                   for e in validate_bench_record(_fake_record({})))

    def test_empty_wall_all_rejected(self):
        rec = _fake_record({"a": 1.0})
        rec["cases"]["a"]["wall_all"] = []
        assert any("wall_all" in e for e in validate_bench_record(rec))


class TestRegressionDetector:
    def _trajectory(self, series):
        return [_fake_record(walls) for walls in series]

    def test_clean_improvement_not_flagged(self):
        trajectory = self._trajectory([{"a": 1.0}, {"a": 1.02}, {"a": 0.98}])
        verdicts = detect_regressions(trajectory, _fake_record({"a": 0.5}))
        assert [v.status for v in verdicts] == ["improved"]
        assert not has_regression(verdicts)

    def test_genuine_3x_regression_flagged(self):
        trajectory = self._trajectory([{"a": 1.0}, {"a": 1.05}, {"a": 0.95}])
        verdicts = detect_regressions(trajectory, _fake_record({"a": 3.0}))
        assert [v.status for v in verdicts] == ["regression"]
        assert has_regression(verdicts)
        assert verdicts[0].ratio == pytest.approx(3.0)

    def test_noisy_but_flat_series_no_false_positive(self):
        # a flat series with jitter; the new sample sits 1 MAD above the
        # median — ordinary noise, must NOT be flagged
        walls = [1.0, 1.1, 0.9, 1.05, 0.95, 1.08, 0.92]
        trajectory = self._trajectory([{"a": w} for w in walls])
        import statistics
        median = statistics.median(walls)
        mad = statistics.median(abs(w - median) for w in walls)
        assert mad > 0  # the point of the test: real jitter in history
        new = _fake_record({"a": median + mad})
        verdicts = detect_regressions(trajectory, new)
        assert [v.status for v in verdicts] == ["ok"]
        assert not has_regression(verdicts)

    def test_unchanged_rerun_passes_single_baseline(self):
        # the seeded-trajectory scenario: one committed record, a rerun
        # at the same speed (MAD is 0, so the relative floor governs)
        trajectory = self._trajectory([{"a": 1.0}])
        verdicts = detect_regressions(trajectory, _fake_record({"a": 1.01}))
        assert [v.status for v in verdicts] == ["ok"]

    def test_3x_regression_flagged_even_with_single_baseline(self):
        trajectory = self._trajectory([{"a": 0.1}])
        verdicts = detect_regressions(trajectory, _fake_record({"a": 0.3}))
        assert has_regression(verdicts)

    def test_tiny_absolute_times_respect_abs_floor(self):
        # microsecond-scale cases live entirely inside scheduler noise;
        # the absolute floor keeps them from ever flagging
        trajectory = self._trajectory([{"a": 0.0001}])
        verdicts = detect_regressions(trajectory, _fake_record({"a": 0.0015}))
        assert [v.status for v in verdicts] == ["ok"]

    def test_new_and_missing_cases_reported_not_failed(self):
        trajectory = self._trajectory([{"old": 1.0}])
        verdicts = detect_regressions(trajectory, _fake_record({"fresh": 1.0}))
        statuses = {v.case: v.status for v in verdicts}
        assert statuses == {"fresh": "new", "old": "missing"}
        assert not has_regression(verdicts)

    def test_regression_judged_by_best_repeat(self):
        # wall noise is one-sided: a slow median with one clean repeat
        # is scheduler jitter, not a regression — but when even the
        # best repeat is over threshold, every repeat slowed down
        trajectory = self._trajectory([{"a": 1.0}])
        jittery = _fake_record({"a": 2.0})
        jittery["cases"]["a"]["wall_all"] = [2.0, 2.1, 1.02]
        verdicts = detect_regressions(trajectory, jittery)
        assert [v.status for v in verdicts] == ["ok"]
        assert "best 1.0200s" in verdicts[0].describe()

        slow = _fake_record({"a": 2.0})
        slow["cases"]["a"]["wall_all"] = [2.0, 2.1, 1.9]
        assert has_regression(detect_regressions(trajectory, slow))

    def test_quick_and_full_records_are_separate_baselines(self):
        # quick/full budgets differ, so a full run must never be judged
        # against quick wall times (and vice versa)
        trajectory = [_fake_record({"a": 0.1}, quick=True)]
        full = _fake_record({"a": 3.0}, quick=False)
        verdicts = detect_regressions(trajectory, full)
        assert [v.status for v in verdicts] == ["new"]
        assert not has_regression(verdicts)

    def test_render_verdicts_summarizes(self):
        trajectory = self._trajectory([{"a": 1.0}])
        text = render_verdicts(
            detect_regressions(trajectory, _fake_record({"a": 5.0})))
        assert "REGRESSION" in text
        assert "regression check:" in text


class TestHarness:
    def test_run_case_median_of_n(self):
        calls = []

        def fn():
            calls.append(1)
            return {"cycles": 10, "instructions": 20, "items": 1}

        entry = run_case(CaseSpec("c", "desc", fn), repeats=3)
        assert len(calls) == 3
        assert len(entry["wall_all"]) == 3
        assert entry["wall_seconds"] >= 0
        assert entry["sim_cycles"] == 10
        assert entry["peak_rss_kb"] == peak_rss_kb()

    def test_run_case_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_case(CaseSpec("c", "d", lambda: {}), repeats=0)

    def test_run_suite_record_is_schema_valid(self, tmp_path):
        # two real-but-cheap cases keep this a fast tier-1 test
        suite = [case for case in default_suite(quick=True)
                 if case.name in ("example1_detailed", "memory_pingpong")]
        record = run_suite(suite, repeats=1, quick=True)
        assert validate_bench_record(record) == []
        assert record["cases"]["example1_detailed"]["kips"] > 0
        assert "example1_detailed" in render_record(record)

        path = write_record(record, str(tmp_path))
        assert path.endswith(".json")
        loaded = load_trajectory(str(tmp_path))
        assert len(loaded) == 1
        assert loaded[0][1]["cases"].keys() == record["cases"].keys()

    def test_fuzz_throughput_pair_pinned_in_suite(self):
        # the batched fuzz case and its scalar twin must stay paired:
        # the performance story (docs/performance.md) is their ratio,
        # which only means something if both run the same job shape
        names = [case.name for case in default_suite(quick=True)]
        assert "fuzz_batched" in names
        assert "fuzz_scalar_jobs" in names

    def test_fuzz_batched_case_runs_and_counts_legs(self):
        from repro.obs.perf import _batch_fuzz_jobs, _case_fuzz_jobs

        # 2 seeds x 4 models x 2 run configs = 16 simulator legs
        expected = len(_batch_fuzz_jobs(2, ("SC", "PC", "WC", "RC"), 2))
        assert expected == 16
        work = _case_fuzz_jobs(seeds=2, force_scalar=False)()
        assert work["items"] == expected
        assert work["cycles"] > 0

    def test_serve_cache_pair_pinned_in_suite(self):
        # like the fuzz pair: the serving story is the cold/warm ratio,
        # which needs both cases over the same job mix
        names = [case.name for case in default_suite(quick=True)]
        assert "serve_cold_cache" in names
        assert "serve_warm_cache" in names

    def test_serve_cases_run_and_count_jobs(self):
        from repro.obs import telemetry as tm
        from repro.obs.perf import _case_serve_loadgen

        # the case's embedded server enables global telemetry and (by
        # design) stays up until process exit; don't leak the flag to
        # later tests
        prev = tm.enabled()
        try:
            cold = _case_serve_loadgen(count=4, clients=2, warm=False)
            warm = _case_serve_loadgen(count=4, clients=2, warm=True)
            assert cold()["items"] == 4
            # a second cold run clears the store first: still 4 full runs
            assert cold()["items"] == 4
            assert warm()["items"] == 4
            assert warm()["items"] == 4
        finally:
            tm.enable(prev)

    def test_load_trajectory_skips_invalid_and_excluded(self, tmp_path):
        good = write_record(_fake_record({"a": 1.0}), str(tmp_path))
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        (tmp_path / "BENCH_wrong.json").write_text(
            json.dumps({"schema": "other"}))
        (tmp_path / "notes.txt").write_text("ignored")
        assert len(load_trajectory(str(tmp_path))) == 1
        assert load_trajectory(str(tmp_path), exclude=good) == []
        assert load_trajectory(str(tmp_path / "absent")) == []


class TestBenchCli:
    def test_bench_quick_writes_valid_record(self, tmp_path, capsys):
        out = tmp_path / "bench"
        status = cli.main(["bench", "--quick", "--repeats", "1",
                           "--cases", "memory_pingpong",
                           "--out", str(out), "--quiet"])
        assert status == 0
        files = list(out.glob("BENCH_*.json"))
        assert len(files) == 1
        record = json.loads(files[0].read_text())
        assert validate_bench_record(record) == []
        assert "bench record written" in capsys.readouterr().out

    def test_bench_check_flags_injected_3x_slowdown(self, tmp_path, capsys):
        write_record(_fake_record({"a": 1.0}), str(tmp_path))
        slow = tmp_path / "new.json"
        slow.write_text(json.dumps(_fake_record({"a": 3.0})))
        status = cli.main(["bench-check", str(slow),
                           "--trajectory", str(tmp_path)])
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_check_passes_unchanged_rerun(self, tmp_path):
        write_record(_fake_record({"a": 1.0}), str(tmp_path))
        rerun = tmp_path / "rerun.json"
        rerun.write_text(json.dumps(_fake_record({"a": 1.0})))
        assert cli.main(["bench-check", str(rerun),
                         "--trajectory", str(tmp_path)]) == 0

    def test_bench_check_report_only_never_fails(self, tmp_path):
        write_record(_fake_record({"a": 1.0}), str(tmp_path))
        slow = tmp_path / "new.json"
        slow.write_text(json.dumps(_fake_record({"a": 3.0})))
        assert cli.main(["bench-check", str(slow), "--report-only",
                         "--trajectory", str(tmp_path)]) == 0

    def test_bench_check_rejects_invalid_record(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert cli.main(["bench-check", str(bad),
                         "--trajectory", str(tmp_path)]) == 2

    def test_bench_validate(self, tmp_path, capsys):
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(_fake_record({"a": 1.0})))
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert cli.main(["bench-validate", str(good)]) == 0
        assert cli.main(["bench-validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out

    def test_bench_unknown_case_rejected(self, capsys):
        assert cli.main(["bench", "--cases", "no_such_case",
                         "--no-write"]) == 2

"""Tests for the axiomatic (herd-style) checker and its integrations.

The central contract: for every litmus test and every model, the
axiomatic outcome set exactly equals the interleaving enumerator's,
and every outcome the detailed simulator produces is a member.  The
rest exercises the worked examples the docs derive (SB/MP/IRIW), RMW
atomicity, the memoization discipline, the program-to-litmus bridge,
and the CLIs.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.axiomatic import (
    CandidateExecution,
    axiomatic_outcomes,
    axioms_for,
    build_events,
    candidate_executions,
    clear_caches,
    compare_with_enumerator,
    ppo_masks,
    render_axiom_table,
)
from repro.analysis.axiomatic import checker as checker_mod
from repro.analysis.static import (
    analyze_programs,
    axiomatic_verdict,
    litmus_from_programs,
)
from repro.consistency import PC, RC, SC, WC, LitmusTest, read, rmw, write
from repro.consistency.litmus import STANDARD_TESTS
from repro.consistency.models import ALL_MODELS, get_model
from repro.sim.errors import ConfigurationError
from repro.verify import (
    HarnessConfig,
    OracleDisagreement,
    RunConfig,
    check_named,
    check_test,
    generate_litmus,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

MODELS = [SC, PC, WC, RC]

#: trimmed harness config so simulator-membership tests stay fast
FAST = HarnessConfig(
    models=("SC", "RC"),
    techniques=((False, False), (True, True)),
    run_configs=(RunConfig(name="fast", miss_latency=20, skew=(0, 7),
                           warm_shared=True),),
)


def _has(outcomes, **regs):
    wanted = set(regs.items())
    return any(wanted <= set(o) for o in outcomes)


# ----------------------------------------------------------------------
# Worked examples (the derivations docs/axiomatic.md walks through)
# ----------------------------------------------------------------------

class TestWorkedExamples:
    def test_sb_dekker_outcome_needs_relaxation(self):
        test = STANDARD_TESTS["SB"]()
        assert not _has(axiomatic_outcomes(test, SC), r0=0, r1=0)
        for model in (PC, WC, RC):
            assert _has(axiomatic_outcomes(test, model), r0=0, r1=0), model.name

    def test_mp_stale_data_only_under_relaxation(self):
        test = STANDARD_TESTS["MP"]()
        assert not _has(axiomatic_outcomes(test, SC), r0=1, r1=0)
        for model in (WC, RC):
            assert _has(axiomatic_outcomes(test, model), r0=1, r1=0), model.name

    def test_mp_sync_labels_restore_ordering(self):
        test = STANDARD_TESTS["MP+sync"]()
        for model in MODELS:
            assert not _has(axiomatic_outcomes(test, model), r0=1, r1=0), \
                model.name

    def test_iriw_readers_never_disagree(self):
        """Section 2's write atomicity: the fr/rf/ppo cycle kills the
        disagreeing-readers outcome under every model."""
        test = STANDARD_TESTS["IRIW"]()
        for model in MODELS:
            assert not _has(axiomatic_outcomes(test, model),
                            r0=1, r1=0, r2=1, r3=0), model.name

    def test_coherence_program_order_per_location(self):
        test = STANDARD_TESTS["coherence"]()
        for model in MODELS:
            assert not _has(axiomatic_outcomes(test, model), r0=2, r1=1), \
                model.name

    def test_rmw_atomicity_excludes_intervening_write(self):
        """Two atomic swaps of the same lock cannot both read 0: the
        second-in-coherence RMW must read the first (fr;co exclusion)."""
        test = LitmusTest("lock", [
            [rmw("L", "a", 1)],
            [rmw("L", "b", 2)],
        ])
        for model in MODELS:
            outs = axiomatic_outcomes(test, model)
            assert not _has(outs, a=0, b=0), model.name
            assert outs == test.outcomes(model), model.name


# ----------------------------------------------------------------------
# The contract: exact equality with the enumerator, simulator membership
# ----------------------------------------------------------------------

class TestOracleEquality:
    @pytest.mark.parametrize("name", sorted(STANDARD_TESTS))
    def test_named_suite_equals_enumerator(self, name):
        test = STANDARD_TESTS[name]()
        for model in ALL_MODELS:
            comparison = compare_with_enumerator(test, model)
            assert comparison.agree, comparison.describe()

    def test_fuzz_slice_equals_enumerator(self):
        """A 500-test seeded slice: the two static semantics coincide
        on every generated test under all four models."""
        for seed in range(500):
            test = generate_litmus(seed)
            for model in ALL_MODELS:
                assert axiomatic_outcomes(test, model) == \
                    test.outcomes(model), (seed, model.name)

    @pytest.mark.parametrize("name", ["SB", "MP+sync", "IRIW"])
    def test_simulator_outcomes_are_members(self, name):
        result = check_test(STANDARD_TESTS[name](), FAST)
        assert result.ok, [d.describe() for d in result.divergences] + \
            [d.describe() for d in result.oracle_disagreements]
        assert result.num_runs > 0

    def test_litmus_method_matches_module_function(self):
        test = STANDARD_TESTS["WRC"]()
        for model in ALL_MODELS:
            assert test.axiomatic_outcomes(model) == \
                axiomatic_outcomes(test, model)


# ----------------------------------------------------------------------
# Enumeration internals: candidates, caching
# ----------------------------------------------------------------------

class TestCandidates:
    def test_candidates_are_model_independent_and_cached(self):
        clear_caches()
        test = STANDARD_TESTS["SB"]()
        first = candidate_executions(test)
        again = candidate_executions(test)
        assert first is again  # cache hit on the same structure

    def test_structurally_equal_tests_share_cache(self):
        clear_caches()
        a = STANDARD_TESTS["MP"]()
        b = STANDARD_TESTS["MP"]()
        assert a is not b
        assert candidate_executions(a) is candidate_executions(b)

    def test_mutation_misses_cache(self):
        clear_caches()
        test = STANDARD_TESTS["MP"]()
        before = axiomatic_outcomes(test, WC)
        test.threads = [list(test.threads[0])]  # drop the consumer
        after = axiomatic_outcomes(test, WC)
        assert before != after

    def test_cache_is_bounded(self):
        clear_caches()
        for seed in range(checker_mod._CACHE_MAX + 40):
            candidate_executions(generate_litmus(seed))
        assert len(checker_mod._candidate_cache) <= checker_mod._CACHE_MAX

    def test_ppo_mirrors_enumerator_preds(self):
        """The ppo edge rule is exactly the enumerator's preds rule:
        same-address or delay-arc, same thread, program order."""
        test = STANDARD_TESTS["MP+sync"]()
        events = build_events(test)
        masks = ppo_masks(events, RC)
        for a in events:
            for b in events:
                expected = (a.tid == b.tid and a.idx < b.idx
                            and (a.op.addr == b.op.addr
                                 or RC.delay_arc(a.op.access_class(),
                                                 b.op.access_class())))
                assert bool(masks[a.eid] & (1 << b.eid)) == expected, \
                    (a.eid, b.eid)

    def test_candidate_limit_guards_enumeration(self):
        test = LitmusTest("wide", [[write("x", v)] for v in range(1, 9)]
                          + [[read("x", "r0")], [read("x", "r1")],
                             [read("x", "r2")], [read("x", "r3")]])
        old = checker_mod.CANDIDATE_LIMIT
        checker_mod.CANDIDATE_LIMIT = 100
        try:
            clear_caches()
            with pytest.raises(ConfigurationError):
                candidate_executions(test)
        finally:
            checker_mod.CANDIDATE_LIMIT = old
            clear_caches()


# ----------------------------------------------------------------------
# Axiom registry
# ----------------------------------------------------------------------

class TestAxioms:
    def test_every_paper_model_is_registered(self):
        for model in ALL_MODELS:
            axioms = axioms_for(model)
            assert axioms.model == model.name
            assert "acyclic" in axioms.axiom
            assert axioms.render()

    def test_axiom_table_renders(self):
        table = render_axiom_table(list(ALL_MODELS))
        for model in ALL_MODELS:
            assert model.name in table


# ----------------------------------------------------------------------
# Harness integration (the three-way oracle)
# ----------------------------------------------------------------------

class TestHarnessOracle:
    def test_axiomatic_mode_never_simulates(self):
        config = HarnessConfig(models=("SC", "RC"), oracle="axiomatic")
        result = check_test(STANDARD_TESTS["LB"](), config)
        assert result.ok
        assert result.num_runs == 0

    def test_unknown_oracle_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            check_test(STANDARD_TESTS["SB"](),
                       HarnessConfig(oracle="nonsense"))

    def test_check_named_runs_suite_entry(self):
        result = check_named((0, "SB", {"oracle": "axiomatic"}))
        assert result.test_name == "store-buffering"
        assert result.ok

    def test_check_named_rejects_unknown_test(self):
        with pytest.raises(ConfigurationError):
            check_named((0, "no-such-test", {}))

    def test_disagreement_surfaces_in_result(self):
        """Poison the axiomatic cache so the oracles disagree: the
        harness must report an OracleDisagreement, and a simulator
        outcome inside the enumerator set but outside the poisoned
        axiomatic set must be tagged with the axiomatic oracle."""
        test = STANDARD_TESTS["SB"]()
        clear_caches()
        try:
            for model_name in FAST.models:
                key = (checker_mod._test_key(test), model_name)
                checker_mod._outcome_cache[key] = frozenset()
            result = check_test(test, FAST)
            assert not result.ok
            assert len(result.oracle_disagreements) == len(FAST.models)
            dis = result.oracle_disagreements[0]
            assert isinstance(dis, OracleDisagreement)
            assert dis.missing and not dis.extra
            assert "differ" in dis.describe()
            assert result.divergences
            assert all(d.oracle == "axiomatic" for d in result.divergences)
        finally:
            clear_caches()


# ----------------------------------------------------------------------
# The program-to-litmus bridge
# ----------------------------------------------------------------------

def _canon(test, outcomes):
    """Key outcomes by (thread, index) read position so tests with
    different register names compare."""
    pos = {op.reg: (t, i)
           for t, thread in enumerate(test.threads)
           for i, op in enumerate(thread) if op.reads}
    return {tuple(sorted((pos[r], v) for r, v in o)) for o in outcomes}


class TestBridge:
    @pytest.mark.parametrize("name", sorted(STANDARD_TESTS))
    def test_round_trip_preserves_outcomes(self, name):
        test = STANDARD_TESTS[name]()
        programs, _ = test.to_programs(audit=False)
        bridged = litmus_from_programs(programs, name=name)
        assert bridged.ok, bridged.reason
        for model in ALL_MODELS:
            assert _canon(bridged.test, bridged.test.outcomes(model)) == \
                _canon(test, test.outcomes(model)), model.name

    def test_fence_idiom_maps_back_to_fence(self):
        test = STANDARD_TESTS["SB"]().with_fences()
        programs, _ = test.to_programs(audit=False)
        bridged = litmus_from_programs(programs)
        assert bridged.ok, bridged.reason
        assert any(op.op == "F"
                   for thread in bridged.test.threads for op in thread)

    def test_refuses_control_flow(self):
        from repro.isa import ProgramBuilder
        b = ProgramBuilder()
        b.mov_imm("r1", 1)
        b.label("spin")
        b.load("r2", addr=0x100)
        b.branch_zero("r2", "spin")
        result = litmus_from_programs([b.build()])
        assert not result.ok
        assert "control flow" in result.reason

    def test_refuses_non_static_store_value(self):
        from repro.isa import ProgramBuilder
        b = ProgramBuilder()
        b.load("r1", addr=0x100)
        b.store("r1", addr=0x110)  # stores a loaded (unknown) value
        result = litmus_from_programs([b.build()])
        assert not result.ok
        assert "not statically known" in result.reason

    def test_verdict_on_unbridgeable_program_is_reported(self):
        from repro.isa import ProgramBuilder
        b = ProgramBuilder()
        b.load("r1", addr=0x100)
        b.store("r1", addr=0x110)
        verdict = axiomatic_verdict([b.build()], get_model("RC"))
        assert not verdict.available
        assert "unavailable" in verdict.describe()

    def test_analyzer_report_cites_verdict(self):
        test = STANDARD_TESTS["MP"]()
        programs, _ = test.to_programs(audit=False)
        report = analyze_programs(programs, get_model("WC"))
        assert report.axiomatic_sc_equivalent is False
        assert "axioms admit" in report.axiomatic_verdict
        assert "axiomatic:" in report.render()
        races = report.races()
        assert races
        assert all("axiomatic checker" in d.message for d in races)


# ----------------------------------------------------------------------
# CLIs (subprocess, like the fuzzer's own CLI tests)
# ----------------------------------------------------------------------

def _run(module, *argv):
    return subprocess.run(
        [sys.executable, "-m", module, *argv],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        cwd=REPO_ROOT, timeout=600)


class TestCli:
    def test_named_suite_crosscheck_passes(self):
        proc = _run("repro.analysis.axiomatic", "SB", "MP", "IRIW",
                    "--all-models")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "axiomatic: OK" in proc.stdout

    def test_axioms_flag_prints_table(self):
        proc = _run("repro.analysis.axiomatic", "--axioms")
        assert proc.returncode == 0
        assert "acyclic" in proc.stdout

    def test_verbose_prints_witnesses(self):
        proc = _run("repro.analysis.axiomatic", "SB", "--model", "RC",
                    "--verbose")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "admitted" in proc.stdout

    def test_verify_suite_axiomatic_oracle(self):
        proc = _run("repro.verify", "--suite", "--oracle", "axiomatic")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "verify: OK" in proc.stdout
        assert "0 oracle disagreements" in proc.stdout

"""Trace export, ring buffer, stats snapshot, and CLI smoke tests."""

import json

import pytest

from repro.obs.effectiveness import (
    PrefetchEffectiveness,
    SpeculationEffectiveness,
    render_effectiveness,
)
from repro.obs.jsonl import JsonlTraceRecorder, read_jsonl, write_jsonl
from repro.obs.perfetto import (
    to_trace_events,
    validate_trace_events,
    validate_trace_file,
)
from repro.sim.stats import StatsRegistry, format_stats_table
from repro.sim.trace import NullTraceRecorder, TraceEvent, TraceRecorder


# ----------------------------------------------------------------------
# TraceRecorder ring buffer (satellite 1)
# ----------------------------------------------------------------------

class TestRingBuffer:
    def test_unbounded_by_default(self):
        tr = TraceRecorder()
        for i in range(500):
            tr.record(i, "x", "k")
        assert len(tr.events) == 500
        assert tr.dropped == 0

    def test_bounded_keeps_most_recent(self):
        tr = TraceRecorder(max_events=10)
        for i in range(25):
            tr.record(i, "x", "k", i=i)
        assert len(tr.events) == 10
        assert tr.dropped == 15
        assert [ev.detail["i"] for ev in tr.events] == list(range(15, 25))

    def test_filtered_events_do_not_count_as_dropped(self):
        tr = TraceRecorder(kinds=("keep",), max_events=5)
        for i in range(20):
            tr.record(i, "x", "skip")
        assert tr.events == []
        assert tr.dropped == 0

    def test_clear_resets_dropped(self):
        tr = TraceRecorder(max_events=1)
        tr.record(0, "x", "k")
        tr.record(1, "x", "k")
        assert tr.dropped == 1
        tr.clear()
        assert tr.dropped == 0
        assert tr.events == []

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)

    def test_null_recorder_unchanged(self):
        tr = NullTraceRecorder()
        tr.record(0, "x", "k")
        assert tr.events == []
        assert tr.dropped == 0
        assert not tr.enabled

    def test_queries_see_ring_contents(self):
        tr = TraceRecorder(max_events=3)
        for i in range(6):
            tr.record(i, "x", "a" if i % 2 else "b", i=i)
        assert {ev.detail["i"] for ev in tr.of_kind("a")} <= {3, 5}
        assert tr.first("a").detail["i"] == 3
        assert len(tr.render().splitlines()) == 3


# ----------------------------------------------------------------------
# Stats snapshot percentiles and table alignment (satellite 2)
# ----------------------------------------------------------------------

class TestStatsSnapshot:
    def test_snapshot_has_percentiles(self):
        s = StatsRegistry()
        h = s.histogram("lat")
        for v in range(0, 101):
            h.add(v)
        snap = s.snapshot()
        assert snap["lat/p50"] == 50
        assert snap["lat/p95"] == 95
        assert snap["lat/p99"] == 99

    def test_empty_histogram_percentiles_are_zero(self):
        s = StatsRegistry()
        s.histogram("empty")
        snap = s.snapshot()
        assert snap["empty/p50"] == 0
        assert snap["empty/p99"] == 0

    def test_table_aligns_mixed_ints_and_floats(self):
        text = format_stats_table({"a/count": 12345, "a/mean": 3.5,
                                   "b": 7}, title="t")
        lines = text.splitlines()[2:]
        # one shared right-aligned value column: all lines equal width
        assert len({len(line) for line in lines}) == 1
        assert lines[0].endswith("12345")
        assert lines[1].endswith("3.500")
        assert lines[2].endswith("    7")


# ----------------------------------------------------------------------
# JSONL round trip
# ----------------------------------------------------------------------

class TestJsonl:
    def test_write_read_roundtrip(self, tmp_path):
        tr = TraceRecorder()
        tr.record(1, "cpu0", "retire", seq=0, pc=0)
        tr.record(2, "cache0", "fill", line=32)
        path = str(tmp_path / "t.jsonl")
        assert write_jsonl(tr.events, path) == 2
        back = read_jsonl(path)
        assert back == tr.events

    def test_streaming_recorder_keeps_full_log_past_ring(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlTraceRecorder(path, max_events=3) as tr:
            for i in range(10):
                tr.record(i, "x", "k", i=i)
        assert len(tr.events) == 3      # in-memory window bounded
        assert tr.dropped == 7
        assert tr.streamed == 10        # disk log complete
        assert [ev.detail["i"] for ev in read_jsonl(path)] == list(range(10))

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cycle": 1}\n')
        with pytest.raises(ValueError, match="missing 'source'"):
            read_jsonl(str(path))
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_jsonl(str(path))


# ----------------------------------------------------------------------
# Perfetto conversion + validation
# ----------------------------------------------------------------------

class TestPerfetto:
    def _sample_events(self):
        return [
            TraceEvent(1, "cpu0/lsu", "load_issue", {"seq": 0, "tag": "read C",
                                                     "addr": 64}),
            TraceEvent(101, "cpu0/lsu", "load_complete", {"seq": 0,
                                                          "addr": 64,
                                                          "value": 7}),
            TraceEvent(3, "cpu0", "retire", {"seq": 0}),
            TraceEvent(5, "cache0", "fill", {"line": 64}),
            TraceEvent(6, "cpu0/lsu", "slb_insert", {"seq": 2, "line": 80}),
            TraceEvent(9, "cpu0/lsu", "slb_retire", {"seq": 2}),
        ]

    def test_pairs_become_slices(self):
        obj = to_trace_events(self._sample_events())
        slices = [ev for ev in obj["traceEvents"] if ev["ph"] == "X"]
        assert len(slices) == 2
        load = next(s for s in slices if s["name"] == "read C")
        assert load["ts"] == 1 and load["dur"] == 100
        slb = next(s for s in slices if s is not load)
        assert slb["ts"] == 6 and slb["dur"] == 3

    def test_instants_and_metadata_present(self):
        obj = to_trace_events(self._sample_events())
        phs = {ev["ph"] for ev in obj["traceEvents"]}
        assert phs == {"X", "i", "M"}
        names = {ev["args"]["name"] for ev in obj["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "process_name"}
        assert "cpu0" in names

    def test_unterminated_slice_closed_at_last_cycle(self):
        events = [TraceEvent(2, "cpu0/lsu", "store_issue", {"seq": 1}),
                  TraceEvent(50, "cpu0", "retire", {"seq": 1})]
        obj = to_trace_events(events)
        sl = next(ev for ev in obj["traceEvents"] if ev["ph"] == "X")
        assert sl["ts"] == 2 and sl["dur"] == 48
        assert sl["args"]["unterminated"] is True

    def test_converted_object_validates(self):
        assert validate_trace_events(to_trace_events(self._sample_events())) == []

    def test_validator_rejects_malformed(self, tmp_path):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": "nope"}) != []
        errors = validate_trace_events({"traceEvents": [
            {"ph": "X", "name": "a", "ts": 1, "pid": 0, "tid": 0},  # no dur
            {"ph": "z", "name": "b"},                               # bad ph
            {"ph": "i", "name": "c", "ts": -1, "pid": 0, "tid": 0},  # neg ts
            {"ph": "i", "name": "d", "ts": 0, "pid": 0, "tid": 0,
             "s": "x"},                                             # bad scope
        ]})
        assert len(errors) == 4
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert validate_trace_file(str(bad)) != []

    def test_validate_file_ok(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(to_trace_events(self._sample_events())))
        assert validate_trace_file(str(path)) == []


# ----------------------------------------------------------------------
# Effectiveness extraction
# ----------------------------------------------------------------------

class TestEffectiveness:
    def test_prefetch_counters_roundtrip(self):
        s = StatsRegistry()
        s.counter("cpu0/prefetcher/issued").inc(8)
        s.counter("cache0/prefetches_issued").inc(5)
        s.counter("cache0/prefetches_late").inc(2)
        s.counter("cache0/prefetches_useful_hit").inc(1)
        s.counter("cache0/prefetches_useless_invalidated").inc(1)
        pf = PrefetchEffectiveness.from_stats(s, 0)
        assert pf.issued == 5 and pf.useful == 3
        assert pf.accuracy == pytest.approx(0.6)
        assert pf.as_dict()["useless_invalidated"] == 1

    def test_speculation_counters_roundtrip(self):
        s = StatsRegistry()
        s.counter("cpu0/slb/inserted").inc(10)
        s.counter("cpu0/slb/retired").inc(8)
        s.counter("cpu0/slb/reissues").inc(1)
        s.counter("cpu0/slb/squashes").inc(1)
        s.counter("cpu0/slb/rollback_cause/inval").inc(1)
        s.counter("cpu0/squash_reason/speculative_load_violated").inc(1)
        sp = SpeculationEffectiveness.from_stats(s, 0)
        assert sp.corrections == 2
        assert sp.confirmation_rate == pytest.approx(0.8)
        assert sp.rollback_causes["inval"] == 1
        assert sp.squash_reasons == {"speculative_load_violated": 1}

    def test_render_is_text(self):
        s = StatsRegistry()
        text = render_effectiveness(s, num_cpus=1)
        assert "cpu0 prefetch" in text and "cpu0 speculation" in text


# ----------------------------------------------------------------------
# End-to-end CLI smoke (run.py flags and python -m repro.obs)
# ----------------------------------------------------------------------

class TestCliSmoke:
    def test_run_breakdown_and_exports(self, tmp_path, capsys):
        from repro.run import main
        stats_json = tmp_path / "stats.json"
        perfetto = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(["--example", "example2", "--model", "RC",
                   "--prefetch", "--speculation", "--breakdown",
                   "--stats-json", str(stats_json),
                   "--perfetto", str(perfetto),
                   "--trace-jsonl", str(jsonl)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycle breakdown" in out
        assert "technique effectiveness" in out
        snap = json.loads(stats_json.read_text())
        causes = [v for k, v in snap.items()
                  if k.startswith("cpu0/cycles/")]
        assert sum(causes) == snap["cycles"]
        assert validate_trace_file(str(perfetto)) == []
        assert len(read_jsonl(str(jsonl))) > 0

    def test_run_requires_program_or_example(self, capsys):
        from repro.run import main
        with pytest.raises(SystemExit):
            main([])

    def test_obs_breakdown_command(self, tmp_path, capsys):
        from repro.obs.cli import main
        merged = tmp_path / "m.json"
        rc = main(["breakdown", "example2", "--models", "SC",
                   "--stats-json", str(merged)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stall breakdown" in out
        snap = json.loads(merged.read_text())
        assert any(k.startswith("SC/baseline/cpu0/cycles/") for k in snap)

    def test_obs_convert_and_validate_commands(self, tmp_path, capsys):
        from repro.obs.cli import main
        jsonl = tmp_path / "t.jsonl"
        write_jsonl([TraceEvent(1, "cpu0", "retire", {"seq": 0})], str(jsonl))
        trace_json = tmp_path / "t.json"
        assert main(["convert", str(jsonl), str(trace_json)]) == 0
        assert main(["validate", str(trace_json)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"ph": "?"}]}')
        assert main(["validate", str(bad)]) == 1

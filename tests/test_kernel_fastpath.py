"""Differential tests for the kernel's idle-cycle fast-forward path.

The hybrid cycle/event kernel must be a pure wall-clock optimisation:
jumping over idle spans may never change a simulated result.  These
tests run the naive step-every-cycle path against the fast path and
require bit-identical final cycle counts, full stats snapshots
(counters *and* histograms), and trace event streams — for the paper's
Examples 1 and 2 on the detailed simulator across all 4 consistency
models x 4 technique combos, plus a multiprocessor critical-section
workload.  They also pin the kernel-level mechanics: the jump lands
exactly on the next event/wake, ``skip_cycles`` sees the exact elided
count, ``max_cycles`` deadlocks fire at the identical cycle, and a
deadlocked profiled run still exports its ``host/profile/*`` gauges.
"""

import pytest

from repro.consistency import PC, RC, SC, WC
from repro.sim import Component, DeadlockError, Simulator, WAKE_NEVER
from repro.sim.profiler import HOST_PREFIX
from repro.sim.trace import TraceRecorder
from repro.system import run_workload
from repro.workloads import critical_section_workload
from repro.workloads.paper_examples import example1_program, example2_program

MODELS = (SC, PC, WC, RC)
TECHNIQUES = (
    ("baseline", False, False),
    ("prefetch", True, False),
    ("speculation", False, True),
    ("both", True, True),
)


def _run(programs, initial_memory, warm_lines, model, pf, spec, fast_forward):
    trace = TraceRecorder()
    result = run_workload(
        programs, model=model, prefetch=pf, speculation=spec,
        initial_memory=initial_memory, warm_lines=warm_lines,
        max_cycles=2_000_000, trace=trace, fast_forward=fast_forward)
    return (result.cycles,
            result.stats.snapshot(),
            [ev.describe() for ev in trace.events])


def _assert_identical(fast, naive):
    assert fast[0] == naive[0], "final cycle counts differ"
    assert fast[1] == naive[1], "stats snapshots differ"
    assert fast[2] == naive[2], "trace event streams differ"


class TestDifferentialPaperExamples:
    """Fast path == naive path, bit for bit (the tentpole guarantee)."""

    @pytest.mark.parametrize("example", ["example1", "example2"])
    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("tech,pf,spec", TECHNIQUES,
                             ids=[t[0] for t in TECHNIQUES])
    def test_examples_bit_identical(self, example, model, tech, pf, spec):
        wl = (example1_program if example == "example1" else example2_program)()
        fast = _run([wl.program], wl.initial_memory, wl.warm_lines,
                    model, pf, spec, fast_forward=True)
        naive = _run([wl.program], wl.initial_memory, wl.warm_lines,
                     model, pf, spec, fast_forward=False)
        _assert_identical(fast, naive)


class TestDifferentialMultiprocessor:
    @pytest.mark.parametrize("model,pf,spec",
                             [(SC, False, False), (SC, True, True),
                              (WC, True, False), (RC, True, True)],
                             ids=["sc-base", "sc-both", "wc-pf", "rc-both"])
    def test_critical_section_bit_identical(self, model, pf, spec):
        wl = critical_section_workload(num_cpus=2, iterations=2,
                                       shared_counters=3, private=True)
        fast = _run(wl.programs, wl.initial_memory, (), model, pf, spec,
                    fast_forward=True)
        naive = _run(wl.programs, wl.initial_memory, (), model, pf, spec,
                     fast_forward=False)
        _assert_identical(fast, naive)


class TestFastForwardEngages:
    """The optimisation must actually fire, not just be harmless."""

    def test_profiled_run_reports_elided_cycles(self):
        wl = example1_program()
        result = run_workload([wl.program], model=SC,
                              initial_memory=wl.initial_memory,
                              warm_lines=wl.warm_lines, profile=True)
        snap = result.stats.snapshot()
        assert snap[HOST_PREFIX + "fastforward/spans"] > 0
        assert snap[HOST_PREFIX + "fastforward/cycles"] > 0
        # stepped ticks + elided cycles must cover the whole run
        assert snap[HOST_PREFIX + "cycles"] == result.cycles
        assert (snap[HOST_PREFIX + "ticks"]
                + snap[HOST_PREFIX + "fastforward/cycles"]) == result.cycles

    def test_trace_hooks_disable_fast_forward(self):
        sim = Simulator()
        sim.register(_Sleeper())
        seen = []
        sim.add_trace_hook(seen.append)
        sim.schedule(10, lambda: None)
        sim.run(until=lambda: sim.events.next_cycle() is None,
                max_cycles=100, deadlock_check=False)
        assert seen == list(range(1, 11))  # every cycle observed


class _Sleeper(Component):
    """Event-driven-only component that counts its elided cycles."""

    name = "sleeper"

    def __init__(self) -> None:
        self.skipped = 0
        self.ticks = 0

    def tick(self, cycle: int) -> None:
        self.ticks += 1

    def is_quiescent(self) -> bool:
        return False

    def next_wake(self, cycle: int) -> int:
        return WAKE_NEVER

    def skip_cycles(self, skipped: int) -> None:
        self.skipped += skipped


class _TimedWaker(Component):
    name = "timed-waker"

    def __init__(self, wake_at: int) -> None:
        self.wake_at = wake_at
        self.ticked_at = []

    def tick(self, cycle: int) -> None:
        self.ticked_at.append(cycle)

    def is_quiescent(self) -> bool:
        return False

    def next_wake(self, cycle: int) -> int:
        return self.wake_at if cycle < self.wake_at else cycle + 1


class TestKernelJumpMechanics:
    def test_jump_lands_on_next_event(self):
        sim = Simulator()
        sleeper = _Sleeper()
        sim.register(sleeper)
        fired = []
        sim.schedule(100, lambda: fired.append(sim.cycle))
        sim.run(until=lambda: bool(fired), max_cycles=1000,
                deadlock_check=False)
        assert fired == [100]
        assert sim.cycle == 100
        # cycles 1..99 were elided; cycle 100 was stepped normally
        assert sleeper.skipped == 99
        assert sleeper.ticks == 1

    def test_jump_lands_on_component_wake(self):
        sim = Simulator()
        waker = _TimedWaker(wake_at=50)
        sim.register(waker)
        sim.run(until=lambda: len(waker.ticked_at) >= 2, max_cycles=1000,
                deadlock_check=False)
        assert waker.ticked_at == [50, 51]

    def test_fast_forward_off_steps_every_cycle(self):
        sim = Simulator(fast_forward=False)
        sleeper = _Sleeper()
        sim.register(sleeper)
        sim.schedule(40, lambda: None)
        sim.run(until=lambda: sim.events.next_cycle() is None,
                max_cycles=100, deadlock_check=False)
        assert sleeper.ticks == 40
        assert sleeper.skipped == 0

    def test_max_cycles_deadlock_at_identical_cycle(self):
        cycles = []
        for ff in (True, False):
            sim = Simulator(fast_forward=ff)
            sim.register(_Sleeper())
            with pytest.raises(DeadlockError) as exc:
                sim.run(until=lambda: False, max_cycles=500,
                        deadlock_check=False)
            cycles.append(exc.value.cycle)
        assert cycles[0] == cycles[1] == 500


class _Spinner(Component):
    """Never quiescent, never finishes: a guaranteed deadlock."""

    name = "spinner"

    def is_quiescent(self) -> bool:
        return False


class TestProfilerExportOnDeadlock:
    """Satellite bugfix: profile data must survive a DeadlockError."""

    def test_deadlocked_profiled_run_still_exports_gauges(self):
        sim = Simulator(profile=True)
        sim.register(_Spinner())
        with pytest.raises(DeadlockError):
            sim.run(until=lambda: False, max_cycles=100)
        snap = sim.stats.snapshot()
        assert snap[HOST_PREFIX + "cycles"] == 100
        assert HOST_PREFIX + "wall_ns" in snap
        assert HOST_PREFIX + "cycles_per_sec" in snap

    def test_deadlocked_profiled_machine_run_exports_gauges(self):
        # a two-CPU workload wedged by an impossible cycle budget
        from repro.system.machine import MachineConfig, Multiprocessor
        wl = critical_section_workload(num_cpus=2, iterations=2,
                                       shared_counters=3, private=True)
        machine = Multiprocessor(wl.programs, MachineConfig(model=SC),
                                 profile=True)
        machine.init_memory(wl.initial_memory)
        with pytest.raises(DeadlockError):
            machine.run(max_cycles=40)
        snap = machine.sim.stats.snapshot()
        assert snap[HOST_PREFIX + "cycles"] == 40
        assert HOST_PREFIX + "wall_ns" in snap

"""Tests for workload generators and the reference interpreter."""

import pytest

from repro.consistency import RC, SC
from repro.isa import interpret
from repro.system import run_workload
from repro.workloads import (
    critical_section_segment,
    critical_section_workload,
    example1_segment,
    example2_segment,
    figure5_segment,
    pointer_chase_segment,
    private_streaming_program,
    producer_consumer_workload,
    producer_segment,
    random_segment,
    random_sharing_workload,
)


class TestInterpreter:
    def test_interprets_arithmetic(self):
        from repro.isa import ProgramBuilder
        p = (ProgramBuilder().mov_imm("r1", 4).alu("mul", "r2", "r1", imm=3)
             .build())
        res = interpret(p)
        assert res.reg("r2") == 12

    def test_interprets_memory_and_rmw(self):
        from repro.isa import ProgramBuilder
        p = (ProgramBuilder()
             .mov_imm("r1", 5)
             .store("r1", addr=0x10)
             .rmw("r2", addr=0x10, op="add", src="r1")
             .load("r3", addr=0x10)
             .build())
        res = interpret(p, initial_memory={})
        assert res.reg("r2") == 5
        assert res.reg("r3") == 10

    def test_interprets_loops(self):
        from repro.isa import assemble
        p = assemble("""
            movi r1, 0
            movi r2, 5
        loop:
            add r1, r1, r2
            subi r2, r2, 1
            bnez r2, loop
            halt
        """)
        assert interpret(p).reg("r1") == 15

    def test_infinite_loop_detected(self):
        from repro.isa import assemble
        from repro.sim.errors import SimulationError
        p = assemble("x:\njmp x\n")
        with pytest.raises(SimulationError):
            interpret(p, max_steps=100)

    def test_initial_memory_respected(self):
        from repro.isa import ProgramBuilder
        p = ProgramBuilder().load("r1", addr=0x40).build()
        assert interpret(p, initial_memory={0x40: 9}).reg("r1") == 9


class TestSegmentGenerators:
    def test_critical_section_segment_shape(self):
        seg = critical_section_segment(reads=3, writes=2)
        assert seg[0].klass.acquire
        assert seg[-1].klass.release
        assert sum(1 for s in seg if s.klass.is_load and not s.klass.acquire) == 3

    def test_dependent_reads_form_chain(self):
        seg = critical_section_segment(reads=3, dependent_reads=2)
        reads = [s for s in seg if s.klass.is_load and not s.klass.acquire]
        assert reads[1].deps == (reads[0].label,)
        assert reads[2].deps == (reads[1].label,)

    def test_random_segment_reproducible(self):
        a = random_segment(length=12, rng=42)
        b = random_segment(length=12, rng=42)
        assert [(s.label, s.hit) for s in a] == [(s.label, s.hit) for s in b]

    def test_random_segment_sync_period(self):
        seg = random_segment(length=8, sync_period=4, rng=0)
        acquires = [s for s in seg if s.klass.acquire]
        releases = [s for s in seg if s.klass.release]
        assert len(acquires) == 2 and len(releases) == 2

    def test_random_segment_deps_point_backwards(self):
        seg = random_segment(length=30, dependence_fraction=0.8, rng=3)
        seen = set()
        for s in seg:
            for d in s.deps:
                assert d in seen
            seen.add(s.label)

    def test_pointer_chase_is_a_chain(self):
        seg = pointer_chase_segment(length=4)
        for i, s in enumerate(seg):
            assert s.deps == ((seg[i - 1].label,) if i else ())

    def test_producer_segment_ends_with_release(self):
        seg = producer_segment(writes=3)
        assert seg[-1].klass.release
        assert all(s.klass.is_store for s in seg)

    def test_segments_schedule_cleanly(self):
        from repro.core import AnalyticalTimingModel
        engine = AnalyticalTimingModel()
        for seg in (critical_section_segment(), random_segment(rng=5),
                    pointer_chase_segment(), producer_segment(),
                    example1_segment(), example2_segment(), figure5_segment()):
            res = engine.schedule(seg, SC, prefetch=True, speculation=True)
            assert res.total_cycles > 0


class TestMultiprocessorWorkloads:
    def test_critical_section_expectations_match_interpreter(self):
        wl = critical_section_workload(num_cpus=1, iterations=2,
                                       shared_counters=2, private=True)
        res = interpret(wl.programs[0], initial_memory=wl.initial_memory)
        for addr, expected in wl.expectations:
            assert res.word(addr) == expected

    def test_critical_section_shared_counts_both_cpus(self):
        wl = critical_section_workload(num_cpus=3, iterations=2)
        assert wl.expectations[0][1] == 6

    def test_private_workload_disjoint_addresses(self):
        wl = critical_section_workload(num_cpus=2, iterations=1, private=True)
        addrs = [a for a, _ in wl.expectations]
        assert len(addrs) == len(set(addrs)) == 2

    def test_producer_consumer_runs_correctly(self):
        wl = producer_consumer_workload(values=(3, 4), chain=2)
        result = run_workload(wl.programs, model=RC, speculation=True,
                              prefetch=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=500_000)
        for addr, expected in wl.expectations:
            assert result.machine.read_word(addr) == expected

    def test_producer_consumer_rejects_short_chain(self):
        with pytest.raises(ValueError):
            producer_consumer_workload(chain=1)

    def test_random_sharing_workload_runs(self):
        wl = random_sharing_workload(num_cpus=2, ops_per_cpu=8, rng=1)
        result = run_workload(wl.programs, model=SC, max_cycles=500_000)
        assert result.cycles > 0

    def test_private_streaming_program_matches_interpreter(self):
        p = private_streaming_program(ops=10, rng=2)
        expected = interpret(p)
        result = run_workload([p], model=SC, speculation=True, prefetch=True,
                              max_cycles=500_000)
        for addr, value in expected.memory.items():
            assert result.machine.read_word(addr) == value

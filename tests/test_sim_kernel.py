"""Unit tests for the simulation kernel (events, clock, stats, traces)."""

import pytest

from repro.sim import (
    Component,
    DeadlockError,
    EventQueue,
    Simulator,
    StatsRegistry,
    TraceRecorder,
    format_stats_table,
)
from repro.sim.errors import ConfigurationError


class TickCounter(Component):
    name = "tick-counter"

    def __init__(self, busy_until: int = 0) -> None:
        self.ticks = 0
        self.busy_until = busy_until

    def tick(self, cycle: int) -> None:
        self.ticks += 1

    def is_quiescent(self) -> bool:
        return self.ticks >= self.busy_until


class TestEventQueue:
    def test_events_fire_in_cycle_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5, lambda: fired.append(5))
        q.schedule(2, lambda: fired.append(2))
        q.schedule(9, lambda: fired.append(9))
        q.run_due(10)
        assert fired == [2, 5, 9]

    def test_same_cycle_events_fire_in_schedule_order(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule(3, lambda i=i: fired.append(i))
        q.run_due(3)
        assert fired == list(range(10))

    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(1, lambda: fired.append("a"))
        q.schedule(1, lambda: fired.append("b"))
        ev.cancel()
        q.run_due(1)
        assert fired == ["b"]

    def test_event_scheduled_during_sweep_same_cycle_fires(self):
        q = EventQueue()
        fired = []

        def outer():
            fired.append("outer")
            q.schedule(1, lambda: fired.append("inner"))

        q.schedule(1, outer)
        q.run_due(1)
        assert fired == ["outer", "inner"]

    def test_negative_cycle_rejected(self):
        q = EventQueue()
        with pytest.raises(ConfigurationError):
            q.schedule(-1, lambda: None)

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1, lambda: None)
        q.schedule(2, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_next_cycle_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1, lambda: None)
        q.schedule(4, lambda: None)
        ev.cancel()
        assert q.next_cycle() == 4

    def test_schedule_before_pop_horizon_rejected(self):
        q = EventQueue()
        q.schedule(5, lambda: None)
        q.run_due(5)
        with pytest.raises(ConfigurationError):
            q.schedule(4, lambda: None)

    def test_schedule_at_pop_horizon_allowed(self):
        # same-cycle scheduling during a sweep is legal (zero-latency
        # responses) and the new event still fires
        q = EventQueue()
        fired = []
        q.schedule(3, lambda: q.schedule(3, lambda: fired.append("chained")))
        q.run_due(3)
        assert fired == ["chained"]
        assert q.schedule(3, lambda: None).cycle == 3

    def test_len_is_live_count_across_pops_and_cancels(self):
        q = EventQueue()
        evs = [q.schedule(c, lambda: None) for c in (1, 2, 3, 4)]
        assert len(q) == 4
        evs[1].cancel()
        evs[1].cancel()  # idempotent: must not double-decrement
        assert len(q) == 3
        q.run_due(2)     # pops ev@1 and the cancelled ev@2
        assert len(q) == 2
        q.run_due(10)
        assert len(q) == 0


class TestSimulator:
    def test_step_advances_clock_and_ticks_components(self):
        sim = Simulator()
        c = TickCounter()
        sim.register(c)
        sim.step()
        sim.step()
        assert sim.cycle == 2
        assert c.ticks == 2

    def test_run_until_condition(self):
        sim = Simulator()
        c = TickCounter(busy_until=7)
        sim.register(c)
        final = sim.run(until=lambda: c.ticks >= 7)
        assert final == 7

    def test_run_raises_deadlock_at_max_cycles(self):
        sim = Simulator()
        c = TickCounter(busy_until=10**9)
        sim.register(c)
        with pytest.raises(DeadlockError):
            sim.run(until=lambda: False, max_cycles=50)

    def test_run_detects_quiescent_deadlock_early(self):
        sim = Simulator()
        sim.register(TickCounter(busy_until=0))  # immediately quiescent
        with pytest.raises(DeadlockError) as exc:
            sim.run(until=lambda: False, max_cycles=10**6)
        assert exc.value.cycle < 10

    def test_schedule_relative_delay(self):
        sim = Simulator()
        hits = []
        sim.schedule(3, lambda: hits.append(sim.cycle))
        for _ in range(5):
            sim.step()
        assert hits == [3]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.step()
        sim.step()
        with pytest.raises(ValueError):
            sim.schedule_at(1, lambda: None)

    def test_trace_hook_called_every_cycle(self):
        sim = Simulator()
        cycles = []
        sim.add_trace_hook(cycles.append)
        for _ in range(3):
            sim.step()
        assert cycles == [1, 2, 3]


class TestStats:
    def test_counter_baslevel(self):
        reg = StatsRegistry()
        reg.counter("cpu0/loads").inc()
        reg.counter("cpu0/loads").inc(4)
        assert reg.counter("cpu0/loads").value == 5

    def test_histogram_mean_min_max(self):
        reg = StatsRegistry()
        h = reg.histogram("lat")
        for v in [1, 100, 100, 1]:
            h.add(v)
        assert h.count == 4
        assert h.mean == pytest.approx(50.5)
        assert (h.min, h.max) == (1, 100)

    def test_histogram_percentile(self):
        h = StatsRegistry().histogram("p")
        for v in range(1, 101):
            h.add(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100
        assert 49 <= h.percentile(50) <= 51

    def test_histogram_percentile_rejects_out_of_range(self):
        h = StatsRegistry().histogram("p")
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_snapshot_contains_counters_and_histograms(self):
        reg = StatsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h").add(10)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["h/count"] == 1
        assert snap["h/mean"] == 10

    def test_merge_from_accumulates(self):
        a, b = StatsRegistry(), StatsRegistry()
        a.counter("x").inc(1)
        b.counter("x").inc(2)
        b.histogram("h").add(5)
        a.merge_from(b)
        assert a.counter("x").value == 3
        assert a.histogram("h").count == 1

    def test_counters_prefix_filter(self):
        reg = StatsRegistry()
        reg.counter("cpu0/loads").inc()
        reg.counter("cpu1/loads").inc()
        assert list(reg.counters("cpu0/")) == ["cpu0/loads"]

    def test_format_stats_table_renders(self):
        text = format_stats_table({"alpha": 1, "beta": 22}, title="T")
        assert "alpha" in text and "22" in text and "T" in text

    def test_format_stats_table_empty(self):
        assert "(no statistics)" in format_stats_table({})

    def test_reset(self):
        reg = StatsRegistry()
        reg.counter("c").inc(9)
        reg.histogram("h").add(3)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.histogram("h").count == 0


class TestTraceRecorder:
    def test_record_and_filter(self):
        tr = TraceRecorder()
        tr.record(1, "lsu", "issue", tag="ld A")
        tr.record(2, "slb", "squash", tag="ld D")
        assert len(tr.events) == 2
        assert [e.kind for e in tr.of_kind("squash")] == ["squash"]
        assert tr.first("issue").detail["tag"] == "ld A"

    def test_kind_filter_drops_unwanted(self):
        tr = TraceRecorder(kinds=["squash"])
        tr.record(1, "lsu", "issue")
        tr.record(2, "slb", "squash")
        assert [e.kind for e in tr.events] == ["squash"]

    def test_disabled_recorder_records_nothing(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1, "x", "y")
        assert tr.events == []

    def test_render_mentions_cycle_and_kind(self):
        tr = TraceRecorder()
        tr.record(7, "cache", "inval", line=0x40)
        assert "7" in tr.render() and "inval" in tr.render()

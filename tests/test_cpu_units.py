"""Unit tests for ROB/renaming, branch prediction, and functional units."""

import pytest

from repro.cpu.branch import BranchPredictor
from repro.cpu.rob import Operand, ReorderBuffer, RobEntry
from repro.cpu.units import AluUnit, BranchUnit
from repro.isa import Alu, Branch, Load, Nop
from repro.sim.errors import SimulationError


def alu_entry(seq, dst="r1", op="add", imm=1):
    return RobEntry(seq=seq, pc=seq, instr=Alu(op=op, dst=dst, src1="r0", imm=imm),
                    dst=dst)


class TestReorderBuffer:
    def test_allocate_and_rename(self):
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0, dst="r1"))
        assert rob.rename_of("r1") == 0
        assert rob.rename_of("r2") is None

    def test_latest_writer_wins_rename(self):
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0, dst="r1"))
        rob.allocate(alu_entry(1, dst="r1"))
        assert rob.rename_of("r1") == 1

    def test_value_of_requires_done(self):
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0))
        assert rob.value_of(0) is None
        rob.mark_done(0, 42)
        assert rob.value_of(0) == 42

    def test_retire_in_order_and_clear_rename(self):
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0, dst="r1"))
        rob.mark_done(0, 5)
        retired = rob.retire_head()
        assert retired.seq == 0
        assert rob.rename_of("r1") is None

    def test_retired_value_still_resolvable(self):
        """An operand captured before the producer retired must still
        resolve afterwards."""
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0, dst="r1"))
        rob.mark_done(0, 5)
        op = Operand(producer=0)
        rob.retire_head()
        assert op.resolve(rob) == 5

    def test_overflow_raises(self):
        rob = ReorderBuffer(1)
        rob.allocate(alu_entry(0))
        assert rob.full
        with pytest.raises(SimulationError):
            rob.allocate(alu_entry(1))

    def test_squash_from_discards_younger_and_rebuilds_rename(self):
        rob = ReorderBuffer(8)
        rob.allocate(alu_entry(0, dst="r1"))
        rob.allocate(alu_entry(1, dst="r2"))
        rob.allocate(alu_entry(2, dst="r1"))
        discarded = rob.squash_from(1)
        assert discarded == [1, 2]
        assert rob.rename_of("r1") == 0  # entry 2's rename undone
        assert rob.rename_of("r2") is None

    def test_squash_from_beyond_tail_is_noop(self):
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0))
        assert rob.squash_from(5) == []

    def test_mark_done_on_squashed_entry_is_ignored(self):
        rob = ReorderBuffer(4)
        rob.allocate(alu_entry(0))
        rob.squash_from(0)
        rob.mark_done(0, 1)  # must not raise
        assert rob.value_of(0) is None

    def test_head_and_empty(self):
        rob = ReorderBuffer(4)
        assert rob.head() is None and rob.empty
        rob.allocate(alu_entry(0))
        assert rob.head().seq == 0


class TestOperand:
    def test_immediate_operand(self):
        assert Operand(value=7).resolve(ReorderBuffer(2)) == 7

    def test_describe(self):
        assert Operand(value=7).describe() == "7"
        assert "tag#3" in Operand(producer=3).describe()


class TestBranchPredictor:
    def branch(self, predict=None):
        return Branch(cond="r1", target="t", predict_taken=predict)

    def test_static_hint_honoured(self):
        bp = BranchPredictor()
        assert bp.predict(0, self.branch(predict=True)) is True
        assert bp.predict(0, self.branch(predict=False)) is False

    def test_default_not_taken_without_dynamic(self):
        bp = BranchPredictor(dynamic=False)
        assert bp.predict(0, self.branch()) is False

    def test_counters_learn_taken_branch(self):
        bp = BranchPredictor()
        b = self.branch()
        assert bp.predict(4, b) is False  # initial weakly-not-taken
        for _ in range(3):
            bp.update(4, b, taken=True, mispredicted=True)
        assert bp.predict(4, b) is True

    def test_counters_saturate_and_recover(self):
        bp = BranchPredictor()
        b = self.branch()
        for _ in range(10):
            bp.update(4, b, taken=True, mispredicted=False)
        bp.update(4, b, taken=False, mispredicted=True)
        assert bp.predict(4, b) is True  # one miss doesn't flip saturation

    def test_hinted_branches_do_not_pollute_table(self):
        bp = BranchPredictor()
        hinted = self.branch(predict=True)
        for _ in range(5):
            bp.update(4, hinted, taken=False, mispredicted=True)
        assert bp.predict(4, self.branch()) is False  # table untouched

    def test_misprediction_counter(self):
        bp = BranchPredictor()
        bp.update(0, self.branch(), taken=True, mispredicted=True)
        bp.update(0, self.branch(), taken=True, mispredicted=False)
        assert bp.mispredictions == 1


class TestAluUnit:
    def make(self, alu_count=1):
        rob = ReorderBuffer(16)
        done = []
        unit = AluUnit(rob, rs_size=8, alu_count=alu_count,
                       on_complete=lambda e, v: done.append((e.seq, v)))
        return rob, unit, done

    def test_executes_when_operands_ready(self):
        rob, unit, done = self.make()
        e = alu_entry(0, imm=5)
        rob.allocate(e)
        unit.dispatch(e, [Operand(value=2)])
        unit.tick(1)   # issue
        unit.tick(2)   # complete (latency 1)
        assert done == [(0, 7)]

    def test_waits_for_producer(self):
        rob, unit, done = self.make()
        producer = alu_entry(0)
        rob.allocate(producer)
        consumer = alu_entry(1, imm=1)
        rob.allocate(consumer)
        unit.dispatch(consumer, [Operand(producer=0)])
        unit.tick(1)
        assert done == []            # operand unavailable
        rob.mark_done(0, 10)
        unit.tick(2)
        unit.tick(3)
        assert done == [(1, 11)]

    def test_multi_cycle_latency(self):
        rob, unit, done = self.make()
        instr = Alu(op="mul", dst="r1", src1="r0", imm=3, latency=4)
        e = RobEntry(seq=0, pc=0, instr=instr, dst="r1")
        rob.allocate(e)
        unit.dispatch(e, [Operand(value=2)])
        unit.tick(1)
        for c in (2, 3, 4):
            unit.tick(c)
            assert done == []
        unit.tick(5)
        assert done == [(0, 6)]

    def test_structural_limit_one_alu(self):
        rob, unit, done = self.make(alu_count=1)
        for seq in range(2):
            e = alu_entry(seq, imm=seq)
            rob.allocate(e)
            unit.dispatch(e, [Operand(value=0)])
        unit.tick(1)                 # only one issues
        unit.tick(2)                 # first completes, second issues
        unit.tick(3)
        assert [seq for seq, _ in done] == [0, 1]

    def test_squash_clears_rs_and_pipeline(self):
        rob, unit, done = self.make()
        e = alu_entry(0)
        rob.allocate(e)
        unit.dispatch(e, [Operand(value=1)])
        unit.tick(1)                 # executing
        unit.squash({0})
        unit.tick(2)
        assert done == []
        assert unit.is_empty()


class TestBranchUnit:
    def test_resolves_one_per_cycle_oldest_first(self):
        rob = ReorderBuffer(8)
        resolved = []
        unit = BranchUnit(rob, rs_size=8,
                          on_resolve=lambda e, taken: resolved.append((e.seq, taken)))
        for seq, val in ((0, 1), (1, 0)):
            instr = Branch(cond="r1", target="t", when_nonzero=True)
            e = RobEntry(seq=seq, pc=seq, instr=instr, dst=None)
            rob.allocate(e)
            unit.dispatch(e, [Operand(value=val)])
        unit.tick(1)
        assert resolved == [(0, True)]
        unit.tick(2)
        assert resolved == [(0, True), (1, False)]

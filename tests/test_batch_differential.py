"""The batched engine's headline contract: bit-identity with the
scalar kernel.

Every test here runs the same job through ``run_workload`` (the scalar
reference) and through :class:`~repro.sim.batch.runner.BatchRunner`,
then asserts **bit-identical** results: final cycle count, every
audited register/memory word, and the *complete* stats snapshot
(every counter and histogram bucket).  No tolerance, no sampling —
the batched engine is only allowed to be faster, never different.

Families:

1. the paper's example programs (example 1 batches; example 2 and
   figure 5 use a base-dependent load and must *fall back*, which the
   suite pins down via the result's ``backend`` field);
2. the named litmus suite x 4 models x 4 technique combos x the
   harness's default run configs;
3. generated fuzz litmus tests (seeded, deterministic) compared
   wholesale in one batch;
4. ``repro.verify`` parity: ``check_seed`` / ``check_seed_chunk`` with
   ``backend="batched"`` produce the same :class:`CheckResult`s as the
   scalar worker — the batched conformance mode of the fuzzer.
"""

import pytest

from repro.consistency.litmus import STANDARD_TESTS
from repro.memory.types import CacheConfig
from repro.sim.batch import BatchJob, BatchRunner, job_unsupported_reason
from repro.sim.sweep import derive_seed, run_sweep
from repro.system.machine import run_workload
from repro.verify.generator import GeneratorConfig, generate_litmus
from repro.verify.harness import (
    DEFAULT_RUN_CONFIGS,
    MODEL_NAMES,
    TECHNIQUE_COMBOS,
    check_seed,
    check_seed_chunk,
)
from repro.workloads import example1_program, example2_program, figure5_program
from repro.workloads.paper_examples import A, B, C, D, E_BASE, LOCK

from repro.consistency.models import get_model


# ----------------------------------------------------------------------
# Shared comparison machinery
# ----------------------------------------------------------------------

def scalar_reference(job: BatchJob):
    """Run one job on the scalar kernel (the ground truth)."""
    return run_workload(
        programs=job.programs,
        model=get_model(job.model_name),
        prefetch=job.prefetch,
        speculation=job.speculation,
        miss_latency=job.miss_latency,
        initial_memory=job.initial_memory,
        warm_lines=job.warm_lines,
        cache=job.cache,
        max_cycles=job.max_cycles,
    )


def assert_jobs_bit_identical(jobs, audit_addrs_per_job):
    """One BatchRunner call vs one scalar run per job; everything equal."""
    results = BatchRunner().run(jobs)
    assert len(results) == len(jobs)
    for job, res, audit_addrs in zip(jobs, results, audit_addrs_per_job):
        ref = scalar_reference(job)
        assert res.ok, f"batched error {res.error!r} vs scalar success"
        assert res.cycles == ref.cycles, (
            f"cycle mismatch: batched {res.cycles} vs scalar {ref.cycles} "
            f"({job.model_name}, prefetch={job.prefetch}, "
            f"speculation={job.speculation})")
        for addr in audit_addrs:
            assert res.read_word(addr) == ref.machine.read_word(addr), (
                f"memory mismatch at {addr} ({job.model_name})")
        assert res.stats.snapshot() == ref.stats.snapshot(), (
            f"stats snapshot mismatch ({job.model_name}, "
            f"prefetch={job.prefetch}, speculation={job.speculation})")


def litmus_jobs(test, model_name, prefetch, speculation, run_configs):
    """The harness's simulator legs for one test, as batch jobs."""
    addresses = test.addresses()
    nthreads = len(test.threads)
    jobs, audits = [], []
    for rc in run_configs:
        skew = tuple(rc.skew[t % len(rc.skew)] for t in range(nthreads))
        programs, audit_map = test.to_programs(delays=skew)
        warm = ()
        if rc.warm_shared:
            warm = tuple((cpu, addr, False) for cpu in range(nthreads)
                         for addr in addresses.values())
        jobs.append(BatchJob(
            programs=programs, model_name=model_name,
            prefetch=prefetch, speculation=speculation,
            miss_latency=rc.miss_latency,
            initial_memory={addr: 0 for addr in addresses.values()},
            warm_lines=warm, cache=CacheConfig(line_size=rc.line_size),
            max_cycles=rc.max_cycles))
        audits.append(sorted(audit_map.values()))
    return jobs, audits


# ----------------------------------------------------------------------
# 1. Paper examples
# ----------------------------------------------------------------------

PAPER_AUDIT = (LOCK, A, B, C, D, E_BASE)


class TestPaperExamples:
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_example1_bit_identical(self, model_name):
        wl = example1_program()
        job = BatchJob(programs=[wl.program], model_name=model_name,
                       initial_memory=wl.initial_memory,
                       warm_lines=wl.warm_lines)
        assert job_unsupported_reason(job) is None
        assert_jobs_bit_identical([job], [PAPER_AUDIT])

    def test_example1_runs_batched(self):
        wl = example1_program()
        job = BatchJob(programs=[wl.program], model_name="WC",
                       initial_memory=wl.initial_memory,
                       warm_lines=wl.warm_lines)
        (res,) = BatchRunner().run([job])
        assert res.backend == "batched"

    @pytest.mark.parametrize("factory", [example2_program, figure5_program],
                             ids=["example2", "figure5"])
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_dependent_load_examples_fall_back(self, factory, model_name):
        # the base-dependent load (read E[D]) is outside the batch
        # envelope: the runner must route to the scalar kernel and
        # still produce identical results
        wl = factory()
        job = BatchJob(programs=[wl.program], model_name=model_name,
                       initial_memory=wl.initial_memory,
                       warm_lines=wl.warm_lines)
        reason = job_unsupported_reason(job)
        assert reason is not None and "fed by a load" in reason
        (res,) = BatchRunner().run([job])
        assert res.backend == "scalar"
        assert res.unsupported_reason == reason
        assert_jobs_bit_identical([job], [PAPER_AUDIT])


# ----------------------------------------------------------------------
# 2. Named litmus suite x models x techniques
# ----------------------------------------------------------------------

class TestNamedSuite:
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_conventional_full_config_axis(self, model_name):
        # conventional legs are the batch envelope: sweep every default
        # run config for every named test in one lockstep batch
        jobs, audits = [], []
        for name in sorted(STANDARD_TESTS):
            j, a = litmus_jobs(STANDARD_TESTS[name](), model_name,
                               False, False, DEFAULT_RUN_CONFIGS)
            jobs += j
            audits += a
        for job in jobs:
            assert job_unsupported_reason(job) is None
        assert_jobs_bit_identical(jobs, audits)

    @pytest.mark.parametrize("prefetch,speculation",
                             [t for t in TECHNIQUE_COMBOS if any(t)],
                             ids=["prefetch", "speculation", "both"])
    def test_technique_legs_fall_back_identically(self, prefetch, speculation):
        # techniques are outside the envelope: one run config per test
        # keeps this quick while pinning the fallback contract for
        # every named test under every model
        jobs, audits = [], []
        for name in sorted(STANDARD_TESTS):
            for model_name in MODEL_NAMES:
                j, a = litmus_jobs(STANDARD_TESTS[name](), model_name,
                                   prefetch, speculation,
                                   DEFAULT_RUN_CONFIGS[:1])
                jobs += j
                audits += a
        results = BatchRunner().run(jobs)
        for res in results:
            assert res.backend == "scalar"
            assert res.unsupported_reason is not None
        assert_jobs_bit_identical(jobs, audits)

    def test_mixed_batch_preserves_order_and_backends(self):
        # interleave batchable and fallback jobs: results come back in
        # input order with the right backend per slot
        test = STANDARD_TESTS["SB"]()
        jobs, audits = [], []
        for prefetch, speculation in TECHNIQUE_COMBOS:
            j, a = litmus_jobs(test, "PC", prefetch, speculation,
                               DEFAULT_RUN_CONFIGS[:2])
            jobs += j
            audits += a
        results = BatchRunner().run(jobs)
        backends = [r.backend for r in results]
        assert backends == ["batched"] * 2 + ["scalar"] * 6
        assert_jobs_bit_identical(jobs, audits)


# ----------------------------------------------------------------------
# 3. Generated fuzz tests, compared wholesale
# ----------------------------------------------------------------------

class TestGeneratedLitmus:
    def test_fuzz_population_bit_identical(self):
        jobs, audits = [], []
        for seed in range(12):
            test = generate_litmus(seed)
            for model_name in MODEL_NAMES:
                j, a = litmus_jobs(test, model_name, False, False,
                                   DEFAULT_RUN_CONFIGS)
                jobs += j
                audits += a
        results = BatchRunner().run(jobs)
        assert all(r.backend == "batched" for r in results)
        assert_jobs_bit_identical(jobs, audits)


# ----------------------------------------------------------------------
# 4. repro.verify parity (the batched conformance mode)
# ----------------------------------------------------------------------

def _comparable(result):
    """A CheckResult's identity-relevant fields (or the error slot)."""
    if hasattr(result, "divergences"):
        return (result.index, result.seed, result.test_name,
                result.num_runs, tuple(result.divergences),
                tuple(result.oracle_disagreements))
    return result


class TestVerifyParity:
    SEEDS = [derive_seed(0, i, "fuzz") for i in range(6)]

    def _items(self, backend, oracle="sim"):
        options = {"oracle": oracle, "backend": backend}
        return [(i, seed, options) for i, seed in enumerate(self.SEEDS)]

    def test_check_seed_backends_agree(self):
        for item_s, item_b in zip(self._items("scalar"),
                                  self._items("batched")):
            assert _comparable(check_seed(item_s)) == \
                _comparable(check_seed(item_b))

    def test_chunk_worker_matches_scalar_sweep(self):
        scalar = run_sweep(check_seed, self._items("scalar"),
                           on_error="record")
        batched = run_sweep(None, self._items("batched"),
                            on_error="record",
                            chunk_worker=check_seed_chunk)
        assert ([_comparable(r) for r in scalar.results]
                == [_comparable(r) for r in batched.results])

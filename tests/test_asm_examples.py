"""The shipped assembly examples run correctly through the CLI."""

import pytest

from repro.run import main

ASM = "examples/asm"


class TestAsmExamples:
    def test_example1_all_configs(self, capsys):
        for extra in ([], ["--prefetch"], ["--prefetch", "--speculation"]):
            assert main([f"{ASM}/example1.s", "--model", "SC",
                         "--watch", "0x20", "--watch", "0x30", *extra]) == 0
            out = capsys.readouterr().out
            assert "MEM[0x20] = 1" in out
            assert "MEM[0x30] = 1" in out

    def test_example1_prefetch_speedup_via_cli(self, capsys):
        def cycles(extra):
            assert main([f"{ASM}/example1.s", "--model", "SC", *extra]) == 0
            out = capsys.readouterr().out
            return int(out.split("completed in ")[1].split()[0])

        base = cycles([])
        fast = cycles(["--prefetch"])
        assert base / fast > 2.5

    def test_producer_consumer_pair(self, capsys):
        assert main([f"{ASM}/producer.s", f"{ASM}/consumer.s",
                     "--model", "RC", "--prefetch", "--speculation",
                     "--regs", "r5"]) == 0
        out = capsys.readouterr().out
        assert "cpu1: r5=42" in out

    def test_dekker_under_sc_never_both_zero(self, capsys):
        assert main([f"{ASM}/dekker.s", f"{ASM}/dekker_mirror.s",
                     "--model", "SC", "--speculation", "--prefetch",
                     "--regs", "r1"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("cpu")]
        values = [int(l.split("r1=")[1]) for l in lines]
        assert values != [0, 0], "SC forbids the Dekker relaxation"

"""Golden-number regression tests for the paper's example kernels.

The paper's quantitative claims reduce to the Example 1/Example 2
cycle-count tables (Sections 3.3/4.1).  These tests pin the complete
model x technique matrix — paper-published cells exactly where the
paper gives a number (``PAPER_CYCLE_COUNTS``), and computed cells at
their currently-verified values — so any timing-path change that moves
a number shows up as an explicit diff against this file rather than a
silent drift.

Detailed-simulator numbers sit a handful of cycles above the
analytical ones (pipeline fill, decode); what matters is that they are
*stable*: the detailed goldens were produced by the current simulator
and re-verified against the analytical shape.
"""

import pytest

from repro.analysis.experiments import TECHNIQUES, _example_cell
from repro.consistency.models import PC, RC, SC, WC
from repro.core.timing import AnalyticalTimingModel, TimingConfig
from repro.workloads.paper_examples import (
    PAPER_CYCLE_COUNTS,
    example1_segment,
    example2_segment,
)

MODELS = (SC, PC, WC, RC)
MISS_LATENCY = 100

#: (example, model) -> cycles per technique, in TECHNIQUES order:
#: (baseline, prefetch, speculation, prefetch+speculation)
ANALYTICAL_GOLDEN = {
    ("example1", "SC"): (301, 103, 301, 103),
    ("example1", "PC"): (301, 103, 301, 103),
    ("example1", "WC"): (202, 103, 202, 103),
    ("example1", "RC"): (202, 103, 202, 103),
    ("example2", "SC"): (302, 203, 104, 104),
    ("example2", "PC"): (302, 203, 104, 104),
    ("example2", "WC"): (203, 202, 104, 104),
    ("example2", "RC"): (203, 202, 104, 104),
}

DETAILED_GOLDEN = {
    ("example1", "SC"): (307, 108, 308, 109),
    ("example1", "PC"): (305, 106, 306, 107),
    ("example1", "WC"): (206, 106, 207, 107),
    ("example1", "RC"): (206, 106, 207, 107),
    ("example2", "SC"): (309, 208, 111, 110),
    ("example2", "PC"): (309, 208, 111, 110),
    ("example2", "WC"): (209, 207, 110, 109),
    ("example2", "RC"): (209, 207, 110, 109),
}

SEGMENTS = {"example1": example1_segment, "example2": example2_segment}


@pytest.mark.parametrize("example,model",
                         [(e, m) for e in SEGMENTS for m in MODELS],
                         ids=[f"{e}-{m.name}" for e in SEGMENTS
                              for m in MODELS])
def test_analytical_golden(example, model):
    engine = AnalyticalTimingModel(TimingConfig(miss_latency=MISS_LATENCY))
    segment = SEGMENTS[example]()
    observed = tuple(
        engine.schedule(segment, model, prefetch=pf,
                        speculation=spec).total_cycles
        for pf, spec in TECHNIQUES.values())
    assert observed == ANALYTICAL_GOLDEN[(example, model.name)]


@pytest.mark.parametrize("example,model",
                         [(e, m) for e in SEGMENTS for m in MODELS],
                         ids=[f"{e}-{m.name}" for e in SEGMENTS
                              for m in MODELS])
def test_detailed_golden(example, model):
    observed = tuple(
        _example_cell((example, model.name, pf, spec, MISS_LATENCY))
        for pf, spec in TECHNIQUES.values())
    assert observed == DETAILED_GOLDEN[(example, model.name)]


def test_goldens_agree_with_paper():
    """Every number the paper actually publishes appears verbatim in
    the analytical golden matrix."""
    for (example, model_name, tech), cycles in PAPER_CYCLE_COUNTS.items():
        column = list(TECHNIQUES).index(tech)
        assert ANALYTICAL_GOLDEN[(example, model_name)][column] == cycles


def test_goldens_keep_paper_shape():
    """Structural invariants of the tables (independent of exact pins):
    techniques never hurt, and both-techniques equalizes the models."""
    for golden in (ANALYTICAL_GOLDEN, DETAILED_GOLDEN):
        for example in SEGMENTS:
            both = [golden[(example, m.name)][3] for m in MODELS]
            base = [golden[(example, m.name)][0] for m in MODELS]
            assert max(both) - min(both) <= 5          # equalized
            assert max(both) < min(base)               # and far faster
            for m in MODELS:
                row = golden[(example, m.name)]
                assert row[3] <= row[0] and row[1] <= row[0]

"""Tests for the Figure 5 scenario (E4) and the scripted agent."""

import pytest

from repro.consistency import RC, SC
from repro.sim import Simulator
from repro.system import MemoryFabric, ScriptedAgent
from repro.system.fabric import MemoryFabric
from repro.workloads import D, E_BASE, run_figure5


class TestScriptedAgent:
    def build(self):
        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=1)
        agent = ScriptedAgent("agent", sim, fabric.net,
                              line_size=fabric.cache_config.line_size)
        return sim, fabric, agent

    @staticmethod
    def settle(sim, cycles=600):
        for _ in range(cycles):
            sim.step()

    def test_agent_write_invalidates_cached_copy(self):
        sim, fabric, agent = self.build()
        fabric.warm(0, 0x40, exclusive=False)
        agent.write_at(1, 0x40, 99)
        self.settle(sim)
        from repro.memory import LineState
        assert fabric.caches[0].line_state(0x40) is LineState.INVALID

    def test_agent_write_value_visible_to_later_reader(self):
        from repro.memory import AccessKind, AccessRequest

        sim, fabric, agent = self.build()
        agent.write_at(1, 0x40, 77)
        self.settle(sim)
        done = {}
        req = AccessRequest(req_id=1, kind=AccessKind.LOAD, addr=0x40,
                            callback=lambda r, v: done.setdefault("v", v))
        assert fabric.caches[0].access(req)
        sim.run(until=lambda: "v" in done, max_cycles=10_000,
                deadlock_check=False)
        assert done["v"] == 77

    def test_agent_read_downgrades_owner(self):
        sim, fabric, agent = self.build()
        fabric.warm(0, 0x40, exclusive=True)
        agent.read_at(1, 0x40)
        self.settle(sim)
        from repro.memory import LineState
        assert fabric.caches[0].line_state(0x40) is LineState.SHARED


class TestFigure5:
    def test_rollback_produces_corrected_values(self):
        result = run_figure5(inval_cycle=5)
        assert result.machine.reg(0, "r2") == 1
        assert result.machine.reg(0, "r3") == 700
        assert result.has_event(
            "invalidation for D arrives; load D and following discarded")
        assert result.has_event("read of D is reissued")

    def test_clean_run_has_no_squash(self):
        result = run_figure5(inval_cycle=90_000, max_cycles=200_000)
        assert result.machine.reg(0, "r2") == 0
        assert result.machine.reg(0, "r3") == 500
        assert result.machine.sim.stats.counter("cpu0/slb/squashes").value == 0

    def test_mis_speculation_costs_but_stays_correct(self):
        clean = run_figure5(inval_cycle=90_000, max_cycles=200_000)
        squashed = run_figure5(inval_cycle=5)
        assert squashed.cycles > clean.cycles
        # stores must be unaffected by the rollback (they were committed)
        assert squashed.machine.read_word(48) == 1  # B
        assert squashed.machine.read_word(64) == 1  # C

    def test_same_value_write_still_squashes(self):
        """Footnote 2: we conservatively assume the value is stale even
        if the new value equals the speculated one."""
        result = run_figure5(inval_cycle=5, new_d_value=0)
        assert result.machine.sim.stats.counter("cpu0/slb/squashes").value >= 1
        assert result.machine.reg(0, "r2") == 0
        assert result.machine.reg(0, "r3") == 500

    def test_rc_keeps_the_early_value_legally(self):
        """Under RC the same remote write causes *no* rollback: read D
        has no earlier acquire, so it was allowed to perform the moment
        it issued — its (now overwritten) value is a legal outcome, and
        the SLB retires the entry instead of monitoring it.  This is
        exactly the semantic gap between SC and RC that the detection
        mechanism encodes in the acq/store-tag fields."""
        result = run_figure5(inval_cycle=5, model=RC)
        assert result.machine.sim.stats.counter("cpu0/slb/squashes").value == 0
        assert result.machine.reg(0, "r2") == 0    # the early (legal) value
        assert result.machine.reg(0, "r3") == 500

    def test_event_digest_ordering(self):
        result = run_figure5(inval_cycle=5)
        events = result.events
        squash = events.index(
            "invalidation for D arrives; load D and following discarded")
        reissue = events.index("read of D is reissued")
        new_value = events.index("new value for D arrives")
        assert squash < reissue < new_value

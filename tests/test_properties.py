"""Property-based tests (hypothesis) over the core invariants.

Four families:

1. the analytical scheduler respects every constraint it is given and
   the techniques never slow a segment down;
2. litmus outcome sets grow monotonically with model relaxation;
3. the coherent memory system is a faithful memory (single-writer
   sequences read back what was written);
4. the detailed out-of-order simulator is architecturally equivalent to
   the reference interpreter on a single CPU, for every model and
   technique combination.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency import PC, RC, SC, WC, LitmusTest, read, write
from repro.consistency.access_class import (
    ACQUIRE,
    PLAIN_LOAD,
    PLAIN_STORE,
    RELEASE,
)
from repro.core.timing import AccessSpec, AnalyticalTimingModel, TimingConfig
from repro.isa import ProgramBuilder, interpret
from repro.system import run_workload

# (ProgramBuilder labels must be unique per builder; the strategies
# below construct a fresh builder per example, so reuse is safe.)

MODELS = [SC, PC, WC, RC]

# ----------------------------------------------------------------------
# Strategy: random access segments for the analytical model
# ----------------------------------------------------------------------

CLASSES = [PLAIN_LOAD, PLAIN_STORE, ACQUIRE, RELEASE]


@st.composite
def segments(draw, max_len=10):
    n = draw(st.integers(min_value=1, max_value=max_len))
    specs = []
    read_labels = []
    for i in range(n):
        klass = draw(st.sampled_from(CLASSES))
        hit = draw(st.booleans())
        deps = ()
        if read_labels and draw(st.booleans()):
            deps = (draw(st.sampled_from(read_labels)),)
        label = f"a{i}"
        specs.append(AccessSpec(label, klass, hit=hit, deps=deps))
        if klass.is_load:
            read_labels.append(label)
    return specs


class TestAnalyticalSchedulerProperties:
    @given(segment=segments(), model=st.sampled_from(MODELS),
           prefetch=st.booleans(), speculation=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_schedule_respects_constraints(self, segment, model,
                                           prefetch, speculation):
        engine = AnalyticalTimingModel(TimingConfig(miss_latency=20))
        res = engine.schedule(segment, model, prefetch=prefetch,
                              speculation=speculation)
        timing = {t.label: t for t in res.timings}
        # value dependences are always respected
        for spec in segment:
            for dep in spec.deps:
                assert timing[spec.label].issue > timing[dep].complete
        # consistency arcs hold for non-speculative accesses
        for i, a in enumerate(segment):
            for b in segment[i + 1:]:
                b_speculates = (speculation and b.klass.is_load
                                and not b.klass.is_store)
                if not b_speculates and model.delay_arc(a.klass, b.klass):
                    assert timing[b.label].issue > timing[a.label].complete, \
                        f"{a.label} -> {b.label} arc violated"
        # one cache issue per cycle (demand + prefetch share the port)
        cycles = [t.issue for t in res.timings]
        cycles += [t.prefetch_issue for t in res.timings
                   if t.prefetch_issue is not None]
        assert len(cycles) == len(set(cycles)), "port oversubscribed"

    @given(segment=segments(), model=st.sampled_from(MODELS))
    @settings(max_examples=80, deadline=None)
    def test_techniques_never_slow_down(self, segment, model):
        engine = AnalyticalTimingModel(TimingConfig(miss_latency=20))
        base = engine.schedule(segment, model).total_cycles
        for pf, sp in ((True, False), (False, True), (True, True)):
            improved = engine.schedule(segment, model, prefetch=pf,
                                       speculation=sp).total_cycles
            assert improved <= base, (pf, sp)

    @given(segment=segments())
    @settings(max_examples=80, deadline=None)
    def test_relaxed_models_never_slower(self, segment):
        engine = AnalyticalTimingModel(TimingConfig(miss_latency=20))
        sc = engine.schedule(segment, SC).total_cycles
        rc = engine.schedule(segment, RC).total_cycles
        assert rc <= sc

    @given(segment=segments(), model=st.sampled_from(MODELS))
    @settings(max_examples=60, deadline=None)
    def test_schedule_deterministic(self, segment, model):
        engine = AnalyticalTimingModel(TimingConfig(miss_latency=20))
        a = engine.schedule(segment, model, prefetch=True, speculation=True)
        b = engine.schedule(segment, model, prefetch=True, speculation=True)
        assert [(t.issue, t.complete) for t in a.timings] == \
               [(t.issue, t.complete) for t in b.timings]


# ----------------------------------------------------------------------
# Litmus monotonicity
# ----------------------------------------------------------------------

@st.composite
def litmus_tests(draw):
    addrs = ["x", "y"]
    reg_counter = [0]

    def thread(tid):
        ops = []
        for _ in range(draw(st.integers(1, 3))):
            addr = draw(st.sampled_from(addrs))
            if draw(st.booleans()):
                ops.append(write(addr, draw(st.integers(1, 3))))
            else:
                reg_counter[0] += 1
                ops.append(read(addr, f"r{tid}_{reg_counter[0]}"))
        return ops

    return LitmusTest("generated", [thread(0), thread(1)])


class TestLitmusProperties:
    @given(test=litmus_tests())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_outcome_sets_monotone_in_relaxation(self, test):
        sc = test.outcomes(SC)
        pc = test.outcomes(PC)
        wc = test.outcomes(WC)
        rc = test.outcomes(RC)
        assert sc <= pc <= wc <= rc

    @given(test=litmus_tests())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sc_outcomes_nonempty_and_deterministic(self, test):
        outcomes = test.outcomes(SC)
        assert outcomes
        assert outcomes == test.outcomes(SC)


# ----------------------------------------------------------------------
# Properties of the fuzzer's generated litmus tests (full op alphabet:
# loads, stores, RMWs, fences, acquire/release annotations)
# ----------------------------------------------------------------------

#: small enough that fencing every gap stays under the 12-access
#: enumeration cap (worst case 2*7 - 2 = 12)
_SMALL_GEN = None


def _small_gen():
    global _SMALL_GEN
    if _SMALL_GEN is None:
        from repro.verify import GeneratorConfig
        _SMALL_GEN = GeneratorConfig(max_cpus=3, max_ops_per_thread=3,
                                     max_total_ops=7)
    return _SMALL_GEN


class TestGeneratedLitmusProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generated_outcomes_monotone_in_relaxation(self, seed):
        """Relaxing the model only ever adds outcomes: every final
        state SC permits is permitted by PC, WC, and RC too."""
        from repro.verify import generate_litmus
        test = generate_litmus(seed)
        sc = test.outcomes(SC)
        for model in (PC, WC, RC):
            assert sc <= test.outcomes(model), model.name

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fence_saturation_collapses_to_sc(self, seed):
        """With a full fence in every program-order gap, every model's
        outcome set collapses to exactly the unfenced SC set — the
        brute-force way to restore sequential consistency."""
        from repro.verify import generate_litmus
        test = generate_litmus(seed, _small_gen())
        sc = test.outcomes(SC)
        fenced = test.with_fences()
        for model in (SC, PC, WC, RC):
            assert fenced.outcomes(model) == sc, model.name


# ----------------------------------------------------------------------
# The axiomatic checker against the interleaving enumerator
# ----------------------------------------------------------------------

class TestAxiomaticProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_axiomatic_equals_enumerator(self, seed):
        """The declarative and interleaving semantics are the same
        function: identical outcome sets on every generated test."""
        from repro.analysis.axiomatic import axiomatic_outcomes
        from repro.verify import generate_litmus
        test = generate_litmus(seed)
        for model in (SC, PC, WC, RC):
            assert axiomatic_outcomes(test, model) == \
                test.outcomes(model), model.name

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_axiomatic_sc_subset_of_weaker_models(self, seed):
        """Relaxation only shrinks ppo, so every SC-accepted candidate
        stays accepted: the axiomatic SC set is a subset of each weaker
        model's set."""
        from repro.analysis.axiomatic import axiomatic_outcomes
        from repro.verify import generate_litmus
        test = generate_litmus(seed)
        sc = axiomatic_outcomes(test, SC)
        for model in (PC, WC, RC):
            assert sc <= axiomatic_outcomes(test, model), model.name

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_axiomatic_fence_saturation_collapses_to_sc(self, seed):
        """A full fence in every gap makes ppo total again: each
        model's axiomatic outcome set collapses to the unfenced
        axiomatic SC set."""
        from repro.analysis.axiomatic import axiomatic_outcomes
        from repro.verify import generate_litmus
        test = generate_litmus(seed, _small_gen())
        sc = axiomatic_outcomes(test, SC)
        fenced = test.with_fences()
        for model in (SC, PC, WC, RC):
            assert axiomatic_outcomes(fenced, model) == sc, model.name


# ----------------------------------------------------------------------
# Memory system as a faithful memory
# ----------------------------------------------------------------------

class TestMemorySystemProperties:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_single_writer_reads_back_its_writes(self, data):
        """One CPU issuing sequential accesses sees a normal memory."""
        from repro.memory import AccessKind, AccessRequest
        from repro.sim import Simulator
        from repro.system.fabric import MemoryFabric

        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=1)
        reference = {}
        n_ops = data.draw(st.integers(3, 15))
        rid = 0
        for _ in range(n_ops):
            addr = data.draw(st.integers(0, 15))
            is_store = data.draw(st.booleans())
            rid += 1
            done = {}

            def cb(req, value, done=done):
                done["value"] = value

            if is_store:
                value = data.draw(st.integers(0, 99))
                req = AccessRequest(req_id=rid, kind=AccessKind.STORE,
                                    addr=addr, value=value, callback=cb)
                reference[addr] = value
            else:
                req = AccessRequest(req_id=rid, kind=AccessKind.LOAD,
                                    addr=addr, callback=cb)
            assert fabric.caches[0].access(req)
            sim.run(until=lambda: "value" in done, max_cycles=5000,
                    deadlock_check=False)
            if not is_store:
                assert done["value"] == reference.get(addr, 0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_disjoint_cpus_do_not_interfere(self, seed):
        """CPUs writing disjoint ranges each see their own data."""
        from repro.memory import AccessKind, AccessRequest
        from repro.sim import Simulator
        from repro.system.fabric import MemoryFabric

        rng = random.Random(seed)
        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=2)
        reference = [{}, {}]
        pending = []
        rid = 0
        for _ in range(20):
            cpu = rng.randrange(2)
            addr = cpu * 0x100 + rng.randrange(8)
            rid += 1
            value = rng.randrange(100)
            req = AccessRequest(req_id=rid, kind=AccessKind.STORE,
                                addr=addr, value=value,
                                callback=lambda r, v: pending.append(r.req_id))
            if fabric.caches[cpu].access(req):
                reference[cpu][addr] = value
            for _ in range(rng.randrange(1, 5)):
                sim.step()
        sim.run(until=fabric.is_quiescent, max_cycles=100_000,
                deadlock_check=False)
        for cpu in (0, 1):
            for addr, value in reference[cpu].items():
                assert fabric.read_word(addr) == value


# ----------------------------------------------------------------------
# Detailed simulator == reference interpreter (single CPU)
# ----------------------------------------------------------------------

ADDRS = [0x10, 0x14, 0x20, 0x24]
REGS = ["r1", "r2", "r3", "r4"]


@st.composite
def straightline_programs(draw, max_len=12):
    b = ProgramBuilder()
    n = draw(st.integers(2, max_len))
    for _ in range(n):
        kind = draw(st.sampled_from(["mov", "add", "load", "store", "rmw"]))
        if kind == "mov":
            b.mov_imm(draw(st.sampled_from(REGS)), draw(st.integers(0, 50)))
        elif kind == "add":
            b.alu("add", draw(st.sampled_from(REGS)),
                  draw(st.sampled_from(REGS)),
                  imm=draw(st.integers(0, 9)))
        elif kind == "load":
            b.load(draw(st.sampled_from(REGS)), addr=draw(st.sampled_from(ADDRS)))
        elif kind == "store":
            b.store(draw(st.sampled_from(REGS)), addr=draw(st.sampled_from(ADDRS)))
        else:
            b.rmw(draw(st.sampled_from(REGS)), addr=draw(st.sampled_from(ADDRS)),
                  op=draw(st.sampled_from(["ts", "add", "swap"])),
                  src=draw(st.sampled_from(REGS)))
    return b.build()


@st.composite
def branching_programs(draw):
    """Straight-line blocks joined by forward branches and a counted
    loop — exercising prediction, squash, and refetch paths."""
    b = ProgramBuilder()
    # a counted loop accumulating into r1
    loop_count = draw(st.integers(1, 4))
    b.mov_imm("r1", 0)
    b.mov_imm("r2", loop_count)
    b.label("loop")
    addr = draw(st.sampled_from(ADDRS))
    if draw(st.booleans()):
        b.store("r2", addr=addr)
    b.add_imm("r1", "r1", draw(st.integers(1, 5)))
    b.alu("sub", "r2", "r2", imm=1)
    b.branch_nonzero("r2", "loop",
                     predict_taken=draw(st.sampled_from([None, True, False])))
    # a forward branch over a block
    b.load("r3", addr=draw(st.sampled_from(ADDRS)))
    b.branch_nonzero("r3", "skip",
                     predict_taken=draw(st.sampled_from([None, True, False])))
    b.mov_imm("r4", 99)
    b.store("r4", addr=draw(st.sampled_from(ADDRS)))
    b.label("skip")
    b.load("r5", addr=draw(st.sampled_from(ADDRS)))
    return b.build()


class TestDifferentialExecution:
    @given(program=straightline_programs(),
           model=st.sampled_from(MODELS),
           prefetch=st.booleans(), speculation=st.booleans())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_detailed_sim_matches_interpreter(self, program, model,
                                              prefetch, speculation):
        expected = interpret(program)
        result = run_workload([program], model=model, prefetch=prefetch,
                              speculation=speculation, miss_latency=20,
                              max_cycles=200_000)
        machine = result.machine
        for reg in REGS:
            assert machine.reg(0, reg) == expected.reg(reg), reg
        for addr in ADDRS:
            assert machine.read_word(addr) == expected.word(addr), hex(addr)

    @given(program=branching_programs(),
           model=st.sampled_from(MODELS),
           spec=st.booleans())
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_branching_programs_match_interpreter(self, program, model, spec):
        """Loops and (mis)predicted branches never change results."""
        expected = interpret(program)
        result = run_workload([program], model=model, prefetch=spec,
                              speculation=spec, miss_latency=20,
                              max_cycles=200_000)
        machine = result.machine
        for reg in ("r1", "r3", "r4", "r5"):
            assert machine.reg(0, reg) == expected.reg(reg), reg
        for addr in ADDRS:
            assert machine.read_word(addr) == expected.word(addr), hex(addr)

"""Integration tests for the out-of-order processor on the memory fabric."""

import pytest

from repro.consistency import PC, RC, SC, WC
from repro.isa import ProgramBuilder, assemble
from repro.system import run_workload


def run1(program, **kw):
    """Run a single-CPU workload with defaults suitable for tests."""
    kw.setdefault("max_cycles", 100_000)
    return run_workload([program], **kw)


class TestComputePipeline:
    def test_mov_and_add(self):
        p = (ProgramBuilder()
             .mov_imm("r1", 5)
             .mov_imm("r2", 7)
             .add("r3", "r1", "r2")
             .build())
        r = run1(p)
        assert r.machine.reg(0, "r3") == 12

    def test_dependent_chain(self):
        b = ProgramBuilder().mov_imm("r1", 1)
        for _ in range(10):
            b.add_imm("r1", "r1", 1)
        r = run1(b.build())
        assert r.machine.reg(0, "r1") == 11

    def test_out_of_order_execution_of_independent_ops(self):
        # a long-latency mul should not block an independent add
        p = (ProgramBuilder()
             .mov_imm("r1", 3)
             .alu("mul", "r2", "r1", imm=5, latency=8)
             .mov_imm("r3", 9)
             .add_imm("r4", "r3", 1)
             .build())
        r = run1(p)
        assert r.machine.reg(0, "r2") == 15
        assert r.machine.reg(0, "r4") == 10

    def test_all_alu_ops_via_assembler(self):
        p = assemble(
            """
            movi r1, 6
            movi r2, 3
            add  r3, r1, r2
            sub  r4, r1, r2
            and  r5, r1, r2
            or   r6, r1, r2
            xor  r7, r1, r2
            mul  r8, r1, r2
            slt  r9, r2, r1
            halt
            """
        )
        r = run1(p)
        m = r.machine
        assert [m.reg(0, f"r{i}") for i in range(3, 10)] == [9, 3, 2, 7, 5, 18, 1]

    def test_retired_instruction_count(self):
        p = ProgramBuilder().mov_imm("r1", 1).mov_imm("r2", 2).build()
        r = run1(p)
        # 2 movs + halt
        assert r.counter("cpu0/instructions_retired") == 3


class TestBranches:
    def test_loop_sums_one_to_ten(self):
        p = assemble(
            """
                movi r1, 0      # sum
                movi r2, 10     # i
            loop:
                add  r1, r1, r2
                subi r2, r2, 1
                bnez r2, loop
                halt
            """
        )
        r = run1(p)
        assert r.machine.reg(0, "r1") == 55

    def test_not_taken_branch_falls_through(self):
        p = assemble(
            """
                movi r1, 0
                beqz r0, skip   # r0 == 0, so taken
                movi r1, 111
            skip:
                movi r2, 5
                halt
            """
        )
        r = run1(p)
        assert r.machine.reg(0, "r1") == 0
        assert r.machine.reg(0, "r2") == 5

    def test_mispredicted_branch_squashes_wrong_path(self):
        # hint the branch as not-taken while it is actually taken:
        # the wrong-path mov must be discarded
        p = assemble(
            """
                movi r1, 1
                bnez r1, out !taken
                movi r2, 99
            out:
                halt
            """
        )
        r = run1(p)
        assert r.machine.reg(0, "r2") == 0
        assert r.counter("cpu0/branch_mispredicts") == 1
        assert r.counter("cpu0/squash_events") >= 1

    def test_wrong_path_stores_never_reach_memory(self):
        p = assemble(
            """
                movi r1, 1
                movi r3, 77
                bnez r1, out !taken
                st   r3, 0x100     # wrong path: must not perform
            out:
                halt
            """
        )
        r = run1(p)
        assert r.machine.read_word(0x100) == 0

    def test_dynamic_predictor_learns_loop(self):
        p = assemble(
            """
                movi r2, 30
            loop:
                subi r2, r2, 1
                bnez r2, loop
                halt
            """
        )
        r = run1(p)
        assert r.machine.reg(0, "r2") == 0
        # 2-bit counters should mispredict far fewer than 30 times
        assert r.counter("cpu0/branch_mispredicts") <= 5


class TestMemoryOps:
    def test_store_then_load_roundtrip(self):
        p = (ProgramBuilder()
             .mov_imm("r1", 123)
             .store("r1", addr=0x40)
             .load("r2", addr=0x40)
             .build())
        r = run1(p)
        assert r.machine.reg(0, "r2") == 123
        assert r.machine.read_word(0x40) == 123

    def test_store_to_load_forwarding_counted(self):
        p = (ProgramBuilder()
             .mov_imm("r1", 5)
             .store("r1", addr=0x40)
             .load("r2", addr=0x40)
             .build())
        r = run1(p, model=RC)  # RC lets the load run while the store waits
        assert r.machine.reg(0, "r2") == 5
        assert r.counter("cpu0/lsu/store_forwards") == 1

    def test_load_from_initialized_memory(self):
        p = ProgramBuilder().load("r1", addr=0x80).build()
        r = run1(p, initial_memory={0x80: 42})
        assert r.machine.reg(0, "r1") == 42

    def test_indexed_addressing(self):
        p = (ProgramBuilder()
             .load("r1", addr=0x10)            # r1 = 2
             .load("r2", base="r1", addr=0x20)  # MEM[0x22]
             .build())
        r = run1(p, initial_memory={0x10: 2, 0x22: 77})
        assert r.machine.reg(0, "r2") == 77

    def test_rmw_test_and_set(self):
        p = ProgramBuilder().rmw("r1", addr=0x40, op="ts").build()
        r = run1(p, initial_memory={0x40: 0})
        assert r.machine.reg(0, "r1") == 0
        assert r.machine.read_word(0x40) == 1

    def test_rmw_fetch_and_add(self):
        p = (ProgramBuilder()
             .mov_imm("r2", 5)
             .rmw("r1", addr=0x40, op="add", src="r2")
             .build())
        r = run1(p, initial_memory={0x40: 10})
        assert r.machine.reg(0, "r1") == 10
        assert r.machine.read_word(0x40) == 15

    def test_load_after_rmw_same_address_sees_rmw_result(self):
        p = (ProgramBuilder()
             .rmw("r1", addr=0x40, op="ts")
             .load("r2", addr=0x40)
             .build())
        for spec in (False, True):
            r = run1(p, model=RC, speculation=spec, initial_memory={0x40: 0})
            assert r.machine.reg(0, "r2") == 1, f"spec={spec}"

    @pytest.mark.parametrize("model", [SC, PC, WC, RC], ids=lambda m: m.name)
    @pytest.mark.parametrize("pf,spec", [(False, False), (True, False),
                                         (False, True), (True, True)])
    def test_single_cpu_results_identical_across_configs(self, model, pf, spec):
        """Techniques and models must never change architectural results."""
        p = assemble(
            """
                movi r1, 3
                st   r1, 0x10
                ld   r2, 0x10
                addi r2, r2, 10
                st   r2, 0x14
                ld   r3, 0x14
                rmw.add r4, 0x10, r1
                ld   r5, 0x10
                halt
            """
        )
        r = run1(p, model=model, prefetch=pf, speculation=spec)
        m = r.machine
        assert m.reg(0, "r2") == 13
        assert m.reg(0, "r3") == 13
        assert m.reg(0, "r4") == 3
        assert m.reg(0, "r5") == 6
        assert m.read_word(0x14) == 13


class TestConsistencyEnforcement:
    def producer(self):
        b = ProgramBuilder()
        b.store_imm(1, addr=0x10, tag="w1")
        b.store_imm(2, addr=0x20, tag="w2")
        b.store_imm(3, addr=0x30, tag="w3")
        return b.build()

    def test_sc_serializes_stores(self):
        r_sc = run1(self.producer(), model=SC)
        r_rc = run1(self.producer(), model=RC)
        # 3 distinct-line store misses: SC ~300, RC pipelined ~100
        assert r_sc.cycles > 2.2 * r_rc.cycles

    def test_rc_baseline_stalls_after_acquire(self):
        b = ProgramBuilder()
        b.lock_optimistic(addr=0x10, tag="acq")
        b.load("r1", addr=0x20, tag="data")
        p = b.build()
        r = run1(p, model=RC)
        # load delayed behind the acquire -> ~2 misses serialized
        assert r.cycles > 190
        assert r.counter("cpu0/lsu/rs_consistency_stalls") > 0

    def test_speculation_overlaps_load_with_acquire(self):
        b = ProgramBuilder()
        b.lock_optimistic(addr=0x10, tag="acq")
        b.load("r1", addr=0x20, tag="data")
        p = b.build()
        r = run1(p, model=RC, speculation=True)
        assert r.cycles < 130  # overlapped

    def test_wc_pipelines_data_between_syncs(self):
        b = ProgramBuilder()
        b.load("r1", addr=0x10)
        b.load("r2", addr=0x20)
        b.load("r3", addr=0x30)
        p = b.build()
        r_wc = run1(p, model=WC)
        r_sc = run1(p, model=SC)
        assert r_wc.cycles < r_sc.cycles / 2

    def test_pc_load_bypasses_store(self):
        b = ProgramBuilder()
        b.store_imm(1, addr=0x10)
        b.load("r1", addr=0x20)
        p = b.build()
        r_pc = run1(p, model=PC)
        r_sc = run1(p, model=SC)
        assert r_pc.cycles < r_sc.cycles - 50  # load overlapped the store miss

    def test_release_waits_for_previous_stores(self):
        b = ProgramBuilder()
        b.store_imm(1, addr=0x10, tag="data")
        b.release_store_imm(1, addr=0x20, tag="rel")
        p = b.build()
        r = run1(p, model=RC)
        # release cannot complete before the data store: ~2 serialized misses
        assert r.cycles > 190


class TestPrefetchTechnique:
    def test_exclusive_prefetch_for_delayed_stores(self):
        b = ProgramBuilder()
        b.lock_optimistic(addr=0x10, tag="lock")
        b.store_imm(1, addr=0x20, tag="wA")
        b.store_imm(1, addr=0x30, tag="wB")
        p = b.build()
        base = run1(p, model=SC)
        pf = run1(p, model=SC, prefetch=True)
        assert pf.cycles < base.cycles / 2
        assert pf.counter("cpu0/prefetcher/exclusive") >= 2

    def test_prefetch_never_changes_results(self):
        p = assemble(
            """
                movi r1, 9
                st   r1, 0x10
                ld   r2, 0x10
                halt
            """
        )
        base = run1(p, model=SC)
        pf = run1(p, model=SC, prefetch=True)
        assert base.machine.reg(0, "r2") == pf.machine.reg(0, "r2") == 9


class TestMultiprocessor:
    def test_message_passing_with_sync_is_correct(self):
        producer = (ProgramBuilder()
                    .store_imm(42, addr=0x10, tag="data")
                    .release_store_imm(1, addr=0x20, tag="flag")
                    .build())
        consumer = (ProgramBuilder()
                    .spin_until_set(addr=0x20, tag="wait flag")
                    .load("r5", addr=0x10, tag="read data")
                    .build())
        for model in (SC, RC):
            for spec in (False, True):
                r = run_workload([producer, consumer], model=model,
                                 speculation=spec, prefetch=spec,
                                 max_cycles=200_000)
                assert r.machine.reg(1, "r5") == 42, f"{model.name} spec={spec}"

    @pytest.mark.parametrize("model", [SC, RC], ids=lambda m: m.name)
    @pytest.mark.parametrize("spec", [False, True], ids=["base", "spec"])
    def test_spin_lock_mutual_exclusion(self, model, spec):
        """Two CPUs increment a shared counter under a test&set lock."""
        LOCK, COUNTER, ITERS = 0x10, 0x20, 4

        def worker():
            b = ProgramBuilder()
            b.mov_imm("r9", ITERS)
            b.label("again")
            b.lock(addr=LOCK)
            b.load("r1", addr=COUNTER)
            b.add_imm("r1", "r1", 1)
            b.store("r1", addr=COUNTER)
            b.unlock(addr=LOCK)
            b.alu("sub", "r9", "r9", imm=1)
            b.branch_nonzero("r9", "again", predict_taken=True)
            return b.build()

        r = run_workload([worker(), worker()], model=model,
                         speculation=spec, prefetch=spec,
                         max_cycles=500_000)
        assert r.machine.read_word(COUNTER) == 2 * ITERS
        assert r.machine.read_word(LOCK) == 0  # finally released

    def test_two_writers_one_location_last_value_wins(self):
        w0 = ProgramBuilder().store_imm(1, addr=0x40).build()
        w1 = ProgramBuilder().store_imm(2, addr=0x40).build()
        r = run_workload([w0, w1], model=SC, max_cycles=100_000)
        assert r.machine.read_word(0x40) in (1, 2)

    def test_dekker_under_sc_never_both_zero(self):
        t0 = (ProgramBuilder()
              .store_imm(1, addr=0x10, tag="wx")
              .load("r1", addr=0x20, tag="ry")
              .build())
        t1 = (ProgramBuilder()
              .store_imm(1, addr=0x20, tag="wy")
              .load("r2", addr=0x10, tag="rx")
              .build())
        for spec in (False, True):
            r = run_workload([t0, t1], model=SC, speculation=spec,
                             prefetch=spec, max_cycles=100_000)
            both_zero = (r.machine.reg(0, "r1") == 0
                         and r.machine.reg(1, "r2") == 0)
            assert not both_zero, f"SC violated with spec={spec}"

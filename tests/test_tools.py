"""Tests for the Gantt renderer and the run CLI."""

import pytest

from repro import SC, AnalyticalTimingModel
from repro.analysis import compare_schedules, render_schedule
from repro.workloads import example1_segment, example2_segment


class TestGantt:
    def schedule(self, **kw):
        return AnalyticalTimingModel().schedule(example2_segment(), SC, **kw)

    def test_renders_all_accesses(self):
        text = render_schedule(self.schedule())
        for label in ("lock L", "read C", "read D", "read E[D]", "unlock L"):
            assert label in text

    def test_marks_prefetches(self):
        text = render_schedule(self.schedule(prefetch=True))
        assert "p" in text and "prefetch in flight" in text

    def test_marks_speculative_loads(self):
        text = render_schedule(self.schedule(speculation=True))
        assert "*" in text and "speculative" in text

    def test_bars_reflect_cycle_windows(self):
        res = self.schedule()
        text = render_schedule(res, width=res.total_cycles)  # 1 col = 1 cycle
        lock_line = next(l for l in text.splitlines() if l.startswith("lock L"))
        bar = lock_line.split("|")[1]
        assert bar.count("#") == 100  # the lock's full miss window

    def test_compare_stacks_multiple(self):
        engine = AnalyticalTimingModel()
        results = [engine.schedule(example1_segment(), SC),
                   engine.schedule(example1_segment(), SC, prefetch=True)]
        text = compare_schedules(results)
        assert text.count("301 cycles") == 1
        assert text.count("103 cycles") == 1

    def test_issue_complete_annotation(self):
        text = render_schedule(self.schedule())
        assert "1..100" in text   # the lock
        assert "302..302" in text  # the unlock


class TestRunCli:
    def write_program(self, tmp_path, name, source):
        path = tmp_path / name
        path.write_text(source)
        return str(path)

    def test_single_program(self, tmp_path, capsys):
        from repro.run import main
        path = self.write_program(tmp_path, "p.s",
                                  "movi r1, 5\nst r1, 0x40\nld r2, 0x40\nhalt\n")
        assert main([path, "--watch", "0x40", "--regs", "r2"]) == 0
        out = capsys.readouterr().out
        assert "MEM[0x40] = 5" in out
        assert "r2=5" in out
        assert "completed in" in out

    def test_two_programs_with_model_and_techniques(self, tmp_path, capsys):
        from repro.run import main
        prod = self.write_program(tmp_path, "prod.s",
                                  "movi r1, 9\nst r1, 0x40\nst.rel r1, 0x80\nhalt\n")
        cons = self.write_program(
            tmp_path, "cons.s",
            "spin:\nld.acq r2, 0x80\nbeqz r2, spin !taken\nld r3, 0x40\nhalt\n")
        assert main([prod, cons, "--model", "rc", "--prefetch",
                     "--speculation", "--regs", "r3"]) == 0
        out = capsys.readouterr().out
        assert "cpu1: r3=9" in out

    def test_init_memory_and_stats(self, tmp_path, capsys):
        from repro.run import main
        path = self.write_program(tmp_path, "p.s", "ld r1, 0x40\nhalt\n")
        assert main([path, "--init", "0x40=77", "--regs", "r1",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "r1=77" in out
        assert "cpu0/instructions_retired" in out

    def test_bad_init_rejected(self, tmp_path):
        from repro.run import main
        path = self.write_program(tmp_path, "p.s", "halt\n")
        with pytest.raises(SystemExit):
            main([path, "--init", "banana"])

    def test_trace_flag_prints_events(self, tmp_path, capsys):
        from repro.run import main
        path = self.write_program(tmp_path, "p.s",
                                  "movi r1, 1\nst r1, 0x40\nhalt\n")
        assert main([path, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "--- trace ---" in out
        assert "store_issue" in out

"""Tests for the differential conformance fuzzer (``repro.verify``)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.consistency import SC, get_model
from repro.consistency.litmus import (
    LitmusOp,
    LitmusTest,
    read,
    store_buffering,
    write,
)
from repro.sim.errors import ConfigurationError
from repro.sim.sweep import derive_seed, run_sweep
from repro.verify import (
    Corpus,
    CorpusEntry,
    GeneratorConfig,
    HarnessConfig,
    RunConfig,
    check_seed,
    check_test,
    generate_litmus,
    litmus_from_dict,
    litmus_to_dict,
    minimize,
    observed_outcome,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------

class TestGenerator:
    def test_deterministic(self):
        a = generate_litmus(1234)
        b = generate_litmus(1234)
        assert a.threads == b.threads
        assert a.name == b.name

    def test_seeds_differ(self):
        tests = {tuple(tuple(t) for t in generate_litmus(s).threads)
                 for s in range(20)}
        assert len(tests) > 10

    def test_respects_config_bounds(self):
        config = GeneratorConfig()
        for seed in range(50):
            test = generate_litmus(seed, config)
            assert config.min_cpus <= len(test.threads) <= config.max_cpus
            total = sum(len(t) for t in test.threads)
            assert total <= config.max_total_ops
            for thread in test.threads:
                assert (config.min_ops_per_thread <= len(thread)
                        <= config.max_ops_per_thread)

    def test_generated_tests_are_interesting(self):
        # two threads must race on some address, else every model agrees
        for seed in range(30):
            test = generate_litmus(seed)
            shared = {}
            for tid, ops in enumerate(test.threads):
                for op in ops:
                    if op.op != "F":
                        shared.setdefault(op.addr, set()).add(tid)
            assert any(len(tids) >= 2 for tids in shared.values())

    def test_registers_unique(self):
        for seed in range(30):
            test = generate_litmus(seed)
            regs = [op.reg for t in test.threads for op in t if op.reads]
            assert len(regs) == len(set(regs))

    def test_addresses_resolve(self):
        for seed in range(20):
            test = generate_litmus(seed)
            assert test.addresses()  # raises if an address is unknown

    def test_config_round_trip(self):
        config = GeneratorConfig(max_cpus=3, sync_probability=0.5)
        assert GeneratorConfig.from_dict(config.to_dict()) == config

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(min_cpus=5, max_cpus=4)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(max_total_ops=3, max_cpus=4)

    def test_enumeration_affordable(self):
        # generated tests must stay enumerable under every model
        for seed in range(10):
            test = generate_litmus(seed)
            assert test.outcomes(SC)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

#: one small config cell so harness tests stay fast
FAST = HarnessConfig(
    models=("SC", "RC"),
    techniques=((False, False), (True, True)),
    run_configs=(RunConfig(name="fast", miss_latency=20, skew=(0, 7),
                           warm_shared=True),),
)


class TestHarness:
    def test_store_buffering_clean(self):
        result = check_test(store_buffering(), FAST)
        assert result.ok
        assert result.num_runs == 2 * 2 * 1

    def test_observed_outcome_shape(self):
        test = store_buffering()
        outcome = observed_outcome(test, "SC", False, False,
                                   FAST.run_configs[0])
        assert outcome in test.outcomes(SC)

    def test_generated_seeds_clean(self):
        for seed in range(5):
            test = generate_litmus(derive_seed(0, seed, "fuzz"))
            assert check_test(test, FAST).ok

    def test_check_seed_worker(self):
        item = (3, derive_seed(0, 3, "fuzz"), {})
        result = check_seed(item)
        assert result.index == 3
        assert result.seed == item[1]
        assert result.ok

    def test_check_seed_through_parallel_sweep(self):
        # exercises pickling of items and CheckResults across processes
        items = [(i, derive_seed(0, i, "fuzz"), {}) for i in range(2)]
        sweep = run_sweep(check_seed, items, jobs=2, chunk_size=1)
        assert all(r.ok for r in sweep.results)


# ----------------------------------------------------------------------
# Minimizer
# ----------------------------------------------------------------------

class TestMinimize:
    def test_minimizes_with_synthetic_oracle(self):
        # "bug": any test where thread A writes x and thread B reads x
        def oracle(test):
            writers = {tid for tid, ops in enumerate(test.threads)
                       for op in ops if op.writes and op.addr == "x"}
            readers = {tid for tid, ops in enumerate(test.threads)
                       for op in ops if op.reads and op.addr == "x"}
            return bool(writers and readers - writers)

        fat = LitmusTest("fat", threads=[
            [write("x", 1), write("y", 2), read("flag", "a")],
            [read("y", "b"), read("x", "c", acquire=True)],
            [write("data", 3), read("data", "d")],
        ])
        result = minimize(fat, oracle=oracle)
        assert oracle(result.test)
        assert result.ops_after == 2
        assert len(result.test.threads) == 2
        # the acquire annotation is stripped too
        assert not any(op.acquire or op.release
                       for t in result.test.threads for op in t)

    def test_keeps_irreducible_test(self):
        test = store_buffering()
        result = minimize(test, oracle=lambda t: True)
        assert result.ops_after <= 4
        assert len(result.test.threads) == 2

    def test_oracle_budget_respected(self):
        calls = []

        def oracle(test):
            calls.append(1)
            return False

        minimize(store_buffering(), oracle=oracle, max_oracle_calls=7)
        assert len(calls) <= 7


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------

class TestCorpus:
    def test_litmus_round_trip(self):
        for seed in range(10):
            test = generate_litmus(seed)
            again = litmus_from_dict(
                json.loads(json.dumps(litmus_to_dict(test))))
            assert again.threads == test.threads
            assert again.name == test.name

    def test_save_load(self, tmp_path):
        test = generate_litmus(7)
        corpus = Corpus()
        corpus.add(CorpusEntry(master_seed=0, index=7, derived_seed=99,
                               test=litmus_to_dict(test), divergences=[]))
        path = tmp_path / "corpus.json"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert len(loaded.entries) == 1
        assert loaded.entries[0].litmus().threads == test.threads
        assert loaded.entries[0].minimized_litmus().threads == test.threads


# ----------------------------------------------------------------------
# CLI and fault injection (subprocess: faults patch classes in-process)
# ----------------------------------------------------------------------

def _run_verify(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.verify", *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        timeout=540)


class TestCli:
    def test_clean_budget_exits_zero(self):
        proc = _run_verify("--budget", "4", "--seed", "0", "--quiet",
                           "--no-minimize")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.slow
    def test_fault_injection_is_caught_and_localized(self, tmp_path):
        corpus_path = tmp_path / "corpus.json"
        proc = _run_verify("--budget", "25", "--seed", "0",
                           "--fault", "slb-deaf", "--no-minimize",
                           "--localize", "--corpus", str(corpus_path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "FAIL" in proc.stdout
        corpus = Corpus.load(corpus_path)
        assert corpus.entries
        entry = corpus.entries[0]
        assert entry.fault == "slb-deaf"
        # the localizer must have pinned the injected fault to its
        # first divergent architectural event, against both a clean
        # scalar and a clean batched reference
        loc = entry.localization
        assert loc is not None and loc["fault"] == "slb-deaf"
        reports = loc["reports"]
        assert set(reports) == {"scalar-vs-scalar", "scalar-vs-batched"}
        for name, report in reports.items():
            assert report["classification"] == "architectural", name
            assert report["arch_event_a"] or report["arch_event_b"], name
        for path_a, path_b in loc["artifacts"].values():
            assert Path(path_a).exists() and Path(path_b).exists()
            assert str(corpus_path) in path_a  # lands next to the corpus


class TestCampaignTelemetryEndToEnd:
    """ISSUE acceptance: one --jobs 4 campaign produces a merged
    Perfetto trace that validates, a Prometheus snapshot whose leg
    counter equals the reported leg count, and a ledger record whose
    request hash is bit-identical across two identical invocations."""

    CAMPAIGN = ("--budget", "4", "--seed", "0", "--jobs", "4",
                "--no-minimize", "--quiet")

    def _campaign(self, tmp_path, tag):
        stats = tmp_path / f"stats-{tag}.json"
        prom = tmp_path / f"metrics-{tag}.prom"
        spans = tmp_path / f"spans-{tag}.json"
        led = tmp_path / "ledger.jsonl"
        proc = _run_verify(*self.CAMPAIGN,
                           "--stats-json", str(stats),
                           "--prometheus", str(prom),
                           "--trace-spans", str(spans),
                           "--ledger", str(led))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        return stats, prom, spans, led

    @pytest.mark.slow
    def test_campaign_artifacts_and_ledger_dedupe(self, tmp_path):
        import json

        from repro.obs import ledger as ledger_mod
        from repro.obs.perfetto import validate_trace_events

        stats, prom, spans, led = self._campaign(tmp_path, "a")

        # merged multi-process span trace validates structurally
        trace = json.loads(spans.read_text())
        assert validate_trace_events(trace) == []
        pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert len(pids) > 1, "worker spans must merge into one trace"

        # leg counter == the leg count the ledger/harness reports
        snapshot = json.loads(stats.read_text())
        legs = snapshot["counters"]["verify/legs"]
        records, skipped = ledger_mod.read_ledger(str(led))
        assert skipped == 0 and len(records) == 1
        assert records[0]["kind"] == "fuzz"
        assert records[0]["items"] == legs
        assert records[0]["outcome"]["simulator_runs"] == legs
        assert f"repro_verify_legs_total {legs}" in prom.read_text()

        # second identical invocation: bit-identical request hash,
        # detected and reported as a dedupe hit
        self._campaign(tmp_path, "b")
        records, _ = ledger_mod.read_ledger(str(led))
        assert len(records) == 2
        assert records[0]["request_sha256"] == records[1]["request_sha256"]
        stats_out = ledger_mod.ledger_stats(records)
        assert stats_out["dedupe_hits"] == 1
        assert stats_out["inconsistent_hits"] == 0

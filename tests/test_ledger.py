"""Content-addressed run ledger: hashing, round-trip, query CLI.

The ledger's request hash is the future result-cache key, so the tests
pin down what the cache contract needs: canonicalization that is
insensitive to dict insertion order, bit-identical hashes for repeated
identical requests, dedupe/inconsistency accounting, and a reader that
survives a corrupted line without losing the rest of the file.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import ledger

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _record(kind="fuzz", budget=10, seed=1, status=0, wall=1.0):
    return ledger.make_record(
        kind=kind,
        request={"budget": budget, "master_seed": seed, "oracle": "all"},
        outcome={"status": status, "tests": budget},
        wall_seconds=wall,
        items=budget * 64,
        artifacts={"corpus": "corpus.jsonl"},
    )


class TestCanonicalHashing:
    def test_insertion_order_does_not_matter(self):
        a = {"budget": 5, "master_seed": 7, "gen": {"ncpu": 2, "ops": 8}}
        b = {"gen": {"ops": 8, "ncpu": 2}, "master_seed": 7, "budget": 5}
        assert ledger.canonical_json(a) == ledger.canonical_json(b)
        assert ledger.request_hash(a) == ledger.request_hash(b)

    def test_distinct_requests_get_distinct_hashes(self):
        assert ledger.request_hash({"budget": 5}) != \
            ledger.request_hash({"budget": 6})

    def test_hash_is_sha256_hex(self):
        h = ledger.request_hash({"x": 1})
        assert len(h) == 64 and set(h) <= set("0123456789abcdef")

    def test_non_finite_floats_map_to_sentinels(self):
        # geomeans over empty sets, 0/0 speedups and the like must not
        # crash the write path (they used to raise ValueError here)
        text = ledger.canonical_json({"g": float("nan"),
                                      "hi": float("inf"),
                                      "lo": float("-inf")})
        assert json.loads(text) == {"g": "NaN", "hi": "Infinity",
                                    "lo": "-Infinity"}

    def test_non_finite_hash_is_stable(self):
        assert ledger.request_hash({"g": float("nan")}) == \
            ledger.request_hash({"g": float("nan")})
        # the sentinel aliases the literal string by design: the
        # canonical form *is* the sentinel
        assert ledger.request_hash({"g": float("nan")}) == \
            ledger.request_hash({"g": "NaN"})

    def test_non_finite_nested_containers(self):
        text = ledger.canonical_json(
            {"a": [float("inf"), {"b": (float("nan"), 1.5)}]})
        assert json.loads(text) == {"a": ["Infinity", {"b": ["NaN", 1.5]}]}

    def test_finite_floats_unchanged(self):
        assert ledger.canonical_json({"x": 1.5}) == '{"x":1.5}'

    def test_repeated_invocation_is_bit_identical(self):
        first = _record()
        second = _record()
        assert first["request_sha256"] == second["request_sha256"]
        assert first["outcome_digest"] == second["outcome_digest"]


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        rec = _record()
        assert ledger.append_record(rec, path) == path
        records, skipped = ledger.read_ledger(path)
        assert skipped == 0
        assert len(records) == 1
        assert records[0]["request_sha256"] == rec["request_sha256"]
        assert ledger.validate_record(records[0]) == []

    def test_validate_catches_tampered_request(self):
        rec = _record()
        rec["request"]["budget"] = 999  # hash no longer matches
        assert any("does not match" in e
                   for e in ledger.validate_record(rec))

    def test_reader_skips_garbage_lines(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger.append_record(_record(budget=1), path)
        with open(path, "a") as fh:
            fh.write("{not json at all\n")
            fh.write('{"schema": "wrong/0"}\n')
        ledger.append_record(_record(budget=2), path)
        records, skipped = ledger.read_ledger(path)
        assert len(records) == 2
        assert skipped == 2

    def test_missing_ledger_reads_empty(self, tmp_path):
        records, skipped = ledger.read_ledger(str(tmp_path / "nope.jsonl"))
        assert records == [] and skipped == 0

    def test_non_finite_outcome_round_trips(self, tmp_path):
        # the write path survives non-finite floats end to end: the
        # stored record re-reads, re-validates, and re-hashes cleanly
        path = str(tmp_path / "ledger.jsonl")
        rec = ledger.make_record(
            kind="bench",
            request={"geomean": float("nan"), "bound": float("inf")},
            outcome={"speedup": float("-inf"), "ok": True},
            wall_seconds=0.5,
        )
        ledger.append_record(rec, path)
        records, skipped = ledger.read_ledger(path)
        assert skipped == 0 and len(records) == 1
        assert ledger.validate_record(records[0]) == []
        assert records[0]["request_sha256"] == rec["request_sha256"]
        assert records[0]["request"] == {"geomean": "NaN",
                                         "bound": "Infinity"}


def _hammer_appends(path, worker_id, count):
    # module-level so multiprocessing can pickle it
    for i in range(count):
        ledger.append_jsonl({"worker": worker_id, "i": i,
                             "pad": "x" * (40 + (i * 7) % 400)}, path)


class TestAtomicAppends:
    def test_interleaved_writers_leave_no_torn_lines(self, tmp_path):
        import multiprocessing

        path = str(tmp_path / "ledger.jsonl")
        workers, per_worker = 4, 50
        ctx = multiprocessing.get_context("spawn" if sys.platform == "win32"
                                          else "fork")
        procs = [ctx.Process(target=_hammer_appends,
                             args=(path, w, per_worker))
                 for w in range(workers)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(60)
            assert proc.exitcode == 0
        seen = set()
        with open(path) as fh:
            for line in fh:
                obj = json.loads(line)  # a torn line would raise here
                seen.add((obj["worker"], obj["i"]))
        assert len(seen) == workers * per_worker

    def test_append_jsonl_creates_parents(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "log.jsonl")
        ledger.append_jsonl({"a": 1}, path)
        ledger.append_jsonl({"a": 2}, path)
        with open(path) as fh:
            assert [json.loads(l)["a"] for l in fh] == [1, 2]


class TestStats:
    def test_dedupe_hits_counted(self):
        records = [_record(budget=5), _record(budget=5), _record(budget=9)]
        stats = ledger.ledger_stats(records)
        assert stats["records"] == 3
        assert stats["unique_requests"] == 2
        assert stats["dedupe_hits"] == 1
        assert stats["dedupe_hit_rate"] == pytest.approx(1 / 3, abs=1e-3)
        assert stats["inconsistent_hits"] == 0

    def test_inconsistent_outcomes_flagged(self):
        # same request, different outcome digest: nondeterminism signal
        records = [_record(budget=5, status=0), _record(budget=5, status=1)]
        stats = ledger.ledger_stats(records)
        assert stats["dedupe_hits"] == 1
        assert stats["inconsistent_hits"] == 1

    def test_find_records_by_prefix(self):
        records = [_record(budget=5), _record(budget=9)]
        prefix = records[0]["request_sha256"][:12]
        matches = ledger.find_records(records, prefix)
        assert [m["request_sha256"] for m in matches] == \
            [records[0]["request_sha256"]]

    def test_trajectory_filters_kind(self):
        records = [_record(kind="bench", wall=2.0),
                   _record(kind="fuzz", wall=1.0),
                   _record(kind="bench", wall=1.5)]
        points = ledger.ledger_trajectory(records, kind="bench")
        assert [p["wall_seconds"] for p in points] == [2.0, 1.5]
        assert all(p["items_per_second"] > 0 for p in points)


class TestLedgerCLI:
    def _run(self, *argv, ledger_path):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", *argv,
             "--ledger", ledger_path],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"})

    @pytest.fixture()
    def seeded(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger.append_record(_record(budget=5), path)
        ledger.append_record(_record(budget=5), path)
        ledger.append_record(_record(kind="bench", budget=9), path)
        return path

    def test_list(self, seeded):
        proc = self._run("ledger", "list", ledger_path=seeded)
        assert proc.returncode == 0, proc.stderr
        assert "fuzz" in proc.stdout and "bench" in proc.stdout

    def test_show_by_prefix(self, seeded):
        records, _ = ledger.read_ledger(seeded)
        prefix = records[0]["request_sha256"][:10]
        proc = self._run("ledger", "show", prefix, ledger_path=seeded)
        assert proc.returncode == 0, proc.stderr
        assert records[0]["request_sha256"] in proc.stdout

    def test_show_unknown_hash_fails(self, seeded):
        proc = self._run("ledger", "show", "f" * 12, ledger_path=seeded)
        assert proc.returncode == 1

    def test_stats_reports_dedupe(self, seeded):
        proc = self._run("ledger", "stats", "--json", ledger_path=seeded)
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)
        assert stats["records"] == 3
        assert stats["dedupe_hits"] == 1

    def test_trajectory(self, seeded):
        proc = self._run("ledger", "trajectory", "--kind", "bench",
                         "--json", ledger_path=seeded)
        assert proc.returncode == 0, proc.stderr
        points = json.loads(proc.stdout)
        assert len(points) == 1
        assert points[0]["wall_seconds"] == pytest.approx(1.0)

"""Corner cases: structural limits, protocol races, tiny configurations.

Architectural results must be identical under any sizing of the
buffers — small structures may only cost cycles, never correctness.
"""

import pytest

from repro.consistency import RC, SC
from repro.cpu import ProcessorConfig
from repro.isa import ProgramBuilder, assemble, interpret
from repro.memory import AccessKind, AccessRequest, CacheConfig, LineState
from repro.sim import Simulator
from repro.sim.errors import ProtocolError
from repro.system import run_workload
from repro.system.fabric import MemoryFabric
from repro.workloads import barrier_workload, critical_section_workload

REFERENCE_PROGRAM = """
    movi r1, 7
    st   r1, 0x10
    ld   r2, 0x10
    st   r2, 0x20
    ld   r3, 0x20
    rmw.add r4, 0x10, r1
    ld   r5, 0x10
    st   r5, 0x30
    ld   r6, 0x30
    halt
"""


def run_with(processor=None, cache=None, model=SC, spec=True, pf=True):
    program = assemble(REFERENCE_PROGRAM)
    expected = interpret(program)
    result = run_workload([program], model=model, prefetch=pf,
                          speculation=spec, processor=processor,
                          cache=cache, max_cycles=500_000)
    for reg in ("r2", "r3", "r4", "r5", "r6"):
        assert result.machine.reg(0, reg) == expected.reg(reg), reg
    for addr in (0x10, 0x20, 0x30):
        assert result.machine.read_word(addr) == expected.word(addr)
    return result


class TestTinyStructures:
    def test_single_entry_store_buffer(self):
        run_with(processor=ProcessorConfig(store_buffer_size=1))

    def test_single_entry_slb(self):
        run_with(processor=ProcessorConfig(slb_size=1))

    def test_tiny_ls_reservation_station(self):
        run_with(processor=ProcessorConfig(ls_rs_size=1, store_buffer_size=1))

    def test_tiny_rob(self):
        run_with(processor=ProcessorConfig(rob_size=4))

    def test_single_wide_pipeline(self):
        run_with(processor=ProcessorConfig(width=1, alu_count=1))

    def test_tiny_cache_with_conflicts(self):
        # 1 set x 1 way: every distinct line conflicts
        run_with(cache=CacheConfig(num_sets=1, assoc=1))

    def test_tiny_cache_small_mshr(self):
        run_with(cache=CacheConfig(num_sets=2, assoc=1, mshr_entries=1))

    def test_all_tiny_at_once(self):
        run_with(
            processor=ProcessorConfig(rob_size=4, ls_rs_size=1,
                                      store_buffer_size=1, slb_size=1,
                                      width=1, alu_count=1),
            cache=CacheConfig(num_sets=1, assoc=2, mshr_entries=2),
        )

    @pytest.mark.parametrize("model", [SC, RC], ids=lambda m: m.name)
    def test_tiny_structures_multiprocessor(self, model):
        wl = critical_section_workload(num_cpus=2, iterations=2)
        result = run_workload(
            wl.programs, model=model, prefetch=True, speculation=True,
            processor=ProcessorConfig(rob_size=8, slb_size=2,
                                      store_buffer_size=2),
            cache=CacheConfig(num_sets=4, assoc=2),
            initial_memory=wl.initial_memory,
            max_cycles=5_000_000,
        )
        for addr, expected in wl.expectations:
            assert result.machine.read_word(addr) == expected


class TestWritebackRace:
    """The RECALL/WRITEBACK crossing (directory `awaiting_writeback`)."""

    @pytest.mark.parametrize("gap", [0, 1, 5, 20, 45, 90])
    def test_eviction_races_remote_request(self, gap):
        sim = Simulator()
        fabric = MemoryFabric(sim, num_cpus=2,
                              cache_config=CacheConfig(num_sets=1, assoc=1))
        done = {}

        def cb(req, value):
            done[req.req_id] = value

        # CPU0 dirties line 0
        fabric.caches[0].access(AccessRequest(
            req_id=1, kind=AccessKind.STORE, addr=0x0, value=111, callback=cb))
        sim.run(until=lambda: 1 in done, max_cycles=10_000,
                deadlock_check=False)
        # CPU0 evicts it (conflicting fill) while CPU1 requests it
        fabric.caches[0].access(AccessRequest(
            req_id=2, kind=AccessKind.LOAD, addr=0x10, callback=cb))
        for _ in range(gap):
            sim.step()
        fabric.caches[1].access(AccessRequest(
            req_id=3, kind=AccessKind.LOAD, addr=0x0, callback=cb))
        sim.run(until=lambda: 2 in done and 3 in done, max_cycles=50_000,
                deadlock_check=False)
        assert done[3] == 111  # the dirty data must never be lost
        sim.run(until=fabric.is_quiescent, max_cycles=50_000,
                deadlock_check=False)
        assert fabric.directory.read_word(0x0) == 111


class TestDirectoryFairness:
    def test_four_cpus_hammering_one_line_all_progress(self):
        """A single hot line under RMW fire from four CPUs: the blocking
        directory's per-line FIFO queue must guarantee progress for all."""
        from repro.workloads import critical_section_workload

        wl = critical_section_workload(num_cpus=4, iterations=1)
        result = run_workload(wl.programs, model=RC, prefetch=True,
                              speculation=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=10_000_000)
        for addr, expected in wl.expectations:
            assert result.machine.read_word(addr) == expected
        assert result.counter("dir/requests_queued") > 0  # contention was real


class TestFalseSharing:
    def test_adjacent_word_writers_both_land(self):
        w0 = ProgramBuilder().store_imm(5, addr=0x100).build()
        w1 = ProgramBuilder().store_imm(9, addr=0x101).build()  # same line
        for spec in (False, True):
            result = run_workload([w0, w1], model=SC, speculation=spec,
                                  prefetch=spec, max_cycles=200_000)
            assert result.machine.read_word(0x100) == 5
            assert result.machine.read_word(0x101) == 9

    def test_false_sharing_squashes_conservatively(self):
        """A speculative load squashes even when the remote write hits
        a *different word* of the same line (footnote 2)."""
        reader = (ProgramBuilder()
                  .lock_optimistic(addr=0x10, tag="acq")
                  .load("r1", addr=0x100, tag="data")
                  .build())
        # the remote writer touches word 0x101: same line, other word
        from repro.sim.trace import TraceRecorder
        from repro.system.machine import MachineConfig, Multiprocessor
        from repro.memory import LatencyConfig

        config = MachineConfig(model=SC, enable_prefetch=True,
                               enable_speculation=True,
                               latencies=LatencyConfig.from_miss_latency(100))
        machine = Multiprocessor([reader], config, extra_agents=1)
        machine.init_memory({0x10: 0, 0x100: 42, 0x101: 0})
        machine.warm(0, 0x100, exclusive=False)
        machine.agents[0].write_at(5, 0x101, 1)
        machine.run(max_cycles=100_000)
        assert machine.sim.stats.counter("cpu0/slb/squashes").value >= 1
        assert machine.reg(0, "r1") == 42  # value still correct after redo


class TestUpdateProtocolLimits:
    def test_rmw_rejected_under_update_protocol(self):
        program = ProgramBuilder().rmw("r1", addr=0x10, op="ts").build()
        with pytest.raises(ProtocolError):
            run_workload([program], model=SC,
                         cache=CacheConfig(protocol="update"),
                         max_cycles=100_000)

    def test_plain_workload_runs_under_update_protocol(self):
        program = (ProgramBuilder()
                   .store_imm(3, addr=0x10)
                   .load("r1", addr=0x10)
                   .build())
        result = run_workload([program], model=SC,
                              cache=CacheConfig(protocol="update"),
                              max_cycles=100_000)
        assert result.machine.reg(0, "r1") == 3


class TestBarrierWorkload:
    @pytest.mark.parametrize("model", [SC, RC], ids=lambda m: m.name)
    def test_barrier_phases_synchronize(self, model):
        wl = barrier_workload(num_cpus=2, phases=2)
        result = run_workload(wl.programs, model=model, prefetch=True,
                              speculation=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=5_000_000)
        for addr, expected in wl.expectations:
            assert result.machine.read_word(addr) == expected

    def test_barrier_requires_two_cpus(self):
        with pytest.raises(ValueError):
            barrier_workload(num_cpus=1)

    def test_three_cpus_three_phases(self):
        wl = barrier_workload(num_cpus=3, phases=3)
        result = run_workload(wl.programs, model=RC, prefetch=True,
                              speculation=True,
                              initial_memory=wl.initial_memory,
                              max_cycles=10_000_000)
        for addr, expected in wl.expectations:
            assert result.machine.read_word(addr) == expected

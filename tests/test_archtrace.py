"""The canonical architectural event stream (``repro.obs.archtrace``)
and its first-divergence differ (``repro.obs.diff``).

Contracts pinned here:

1. **Schema units** — :func:`derive_arch_event` maps raw trace records
   to the canonical kinds (and drops timing-domain noise), events
   serialize canonically and round-trip, and the collector's head cap
   counts what it discards.
2. **Determinism** — the same leg produces byte-identical event bodies
   and footers run-over-run, and under serial vs parallel sweeps.
3. **Backend parity** — on the named litmus suite the batched engine's
   archtrace is bit-identical to the scalar kernel's, for every model;
   technique legs fall back to the scalar kernel with the fallback
   *tagged*, never silent.
4. **Differ classes** — hand-crafted streams exercise all three
   divergence classes (architectural, final-state, timing-only) plus
   the identical verdict and the CLI exit codes.
"""

import json

import pytest

from repro.consistency.litmus import STANDARD_TESTS
from repro.obs.archtrace import (
    ARCHTRACE_VERSION,
    ArchEvent,
    ArchTraceCollector,
    TeeTrace,
    _mk,
    derive_arch_event,
    read_archtrace,
    write_events_jsonl,
)
from repro.obs.diff import diff_archtraces, diff_main
from repro.sim.batch import BatchRunner
from repro.sim.sweep import run_sweep
from repro.verify.harness import (
    DEFAULT_RUN_CONFIGS,
    MODEL_NAMES,
    TECHNIQUE_COMBOS,
    _legs_to_jobs,
)


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------

def leg_trace(test, model_name, prefetch, speculation, run_config,
              force_scalar):
    """One archtrace-enabled run of a litmus leg; returns the
    byte-comparable body (event lines + footer) and the BatchResult."""
    jobs, _audit = _legs_to_jobs(
        test, [(model_name, prefetch, speculation, run_config)])
    jobs[0].archtrace = True
    (res,) = BatchRunner(force_scalar=force_scalar).run(jobs)
    res.raise_if_error()
    return res.archtrace.event_lines(), res.archtrace.footer(), res


def _sweep_leg(item):
    """Module-level (picklable) sweep worker: one leg's trace body."""
    name, model_name = item
    lines, footer, _res = leg_trace(STANDARD_TESTS[name](), model_name,
                                    False, False, DEFAULT_RUN_CONFIGS[0],
                                    force_scalar=True)
    return lines, json.dumps(footer, sort_keys=True)


# ----------------------------------------------------------------------
# 1. Schema units
# ----------------------------------------------------------------------

class TestDeriveArchEvent:
    def test_retire_from_core(self):
        ev = derive_arch_event(7, "cpu2", "retire",
                               {"seq": 3, "pc": 1, "op": "store",
                                "bound": False, "tag": "ST A"})
        assert ev is not None
        assert (ev.cycle, ev.cpu, ev.seq, ev.kind) == (7, 2, 3, "retire")
        assert "tag" not in dict(ev.detail)  # display-only, not canonical

    def test_load_and_store_complete_from_lsu(self):
        ld = derive_arch_event(9, "cpu0/lsu", "load_complete",
                               {"seq": 1, "addr": 16, "value": 5, "tag": "x"})
        st = derive_arch_event(9, "cpu0/lsu", "store_complete",
                               {"seq": 2, "addr": 20, "value": 1,
                                "rmw": False})
        rmw = derive_arch_event(9, "cpu0/lsu", "store_complete",
                                {"seq": 3, "addr": 24, "value": 0,
                                 "rmw": True})
        assert [e.kind for e in (ld, st, rmw)] == ["load", "store", "rmw"]

    def test_coherence_events_have_no_seq(self):
        fill = derive_arch_event(4, "cache1", "fill",
                                 {"line": 16, "state": "S"})
        inval = derive_arch_event(5, "cache1", "inval", {"line": 16})
        assert fill.seq == -1 and inval.seq == -1
        # seq=-1 is elided from the canonical JSON and restored on read
        assert '"seq"' not in fill.to_json()
        assert ArchEvent.from_json_obj(json.loads(fill.to_json())) == fill

    def test_timing_domain_records_are_dropped(self):
        assert derive_arch_event(1, "cpu0/lsu", "load_issue",
                                 {"seq": 0}) is None
        assert derive_arch_event(1, "dir/0", "txn_start",
                                 {"txn": 9}) is None
        assert derive_arch_event(1, "cpu0", "mispredict", {}) is None

    def test_sort_key_orders_within_a_cycle(self):
        retire = _mk(10, 0, 2, "retire", pc=2, op="alu", bound=True)
        fill = _mk(10, 0, -1, "fill", line=4, state="S")
        later = _mk(11, 0, 0, "retire", pc=0, op="alu", bound=True)
        events = sorted([later, fill, retire], key=lambda e: e.sort_key())
        # within a cycle, coherence events (seq == -1) sort before
        # instruction events, and cycles dominate everything
        assert events == [fill, retire, later]

    def test_arch_key_strips_the_cycle(self):
        a = _mk(10, 0, 2, "load", addr=16, value=1)
        b = _mk(999, 0, 2, "load", addr=16, value=1)
        assert a != b
        assert a.arch_key() == b.arch_key()


class TestCollector:
    def test_head_cap_keeps_earliest_and_counts_drops(self):
        coll = ArchTraceCollector(max_events=2)
        for cycle in range(5):
            coll.record(cycle, "cpu0", "retire",
                        seq=cycle, pc=cycle, op="alu", bound=True)
        assert [ev.cycle for ev in coll.events] == [0, 1]
        assert coll.dropped == 3
        assert coll.footer()["dropped"] == 3

    def test_tee_fans_out_to_both_sinks(self):
        a = ArchTraceCollector()
        b = ArchTraceCollector()
        tee = TeeTrace(a, b)
        assert tee.enabled
        tee.record(3, "cpu0", "retire", seq=0, pc=0, op="alu", bound=True)
        assert a.event_lines() == b.event_lines() != []

    def test_write_read_round_trip(self, tmp_path):
        coll = ArchTraceCollector()
        coll.record(2, "cpu1", "retire", seq=0, pc=0, op="load", bound=True)
        coll.record(1, "cache0", "fill", line=16, state="S")
        coll.finalize(cycles=42, final_memory={16: 7},
                      breakdowns=[{"busy": 40, "idle": 2}])
        path = str(tmp_path / "t.jsonl")
        count = coll.write_jsonl(path, backend="scalar", label="unit",
                                 fallback_reason=None)
        assert count == 2
        header, events, footer = read_archtrace(path)
        assert header["archtrace"] == ARCHTRACE_VERSION
        assert header["backend"] == "scalar"
        assert [ev.to_json() for ev in events] == coll.event_lines()
        assert footer["cycles"] == 42
        assert footer["final_memory"] == {"16": 7}


# ----------------------------------------------------------------------
# 2. Determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_repeated_scalar_runs_are_bit_identical(self):
        test = STANDARD_TESTS["SB"]()
        first = leg_trace(test, "WC", False, False,
                          DEFAULT_RUN_CONFIGS[0], force_scalar=True)[:2]
        second = leg_trace(test, "WC", False, False,
                           DEFAULT_RUN_CONFIGS[0], force_scalar=True)[:2]
        assert first == second

    def test_archtrace_survives_speculative_legs(self):
        # speculation exercises squash/rollback emission; determinism
        # must hold there too
        test = STANDARD_TESTS["MP"]()
        first = leg_trace(test, "RC", True, True,
                          DEFAULT_RUN_CONFIGS[1], force_scalar=True)[:2]
        second = leg_trace(test, "RC", True, True,
                           DEFAULT_RUN_CONFIGS[1], force_scalar=True)[:2]
        assert first == second

    def test_serial_and_parallel_sweeps_agree(self):
        items = [(name, model)
                 for name in ("SB", "MP", "LB")
                 for model in ("SC", "RC")]
        serial = run_sweep(_sweep_leg, items, jobs=1)
        parallel = run_sweep(_sweep_leg, items, jobs=2)
        assert list(serial.results) == list(parallel.results)


# ----------------------------------------------------------------------
# 3. Backend parity on the named suite
# ----------------------------------------------------------------------

class TestBackendParity:
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_named_suite_batched_bit_identical(self, model_name):
        rc = DEFAULT_RUN_CONFIGS[0]
        for name in sorted(STANDARD_TESTS):
            test = STANDARD_TESTS[name]()
            s_lines, s_footer, _ = leg_trace(test, model_name, False, False,
                                             rc, force_scalar=True)
            b_lines, b_footer, b_res = leg_trace(test, model_name, False,
                                                 False, rc,
                                                 force_scalar=False)
            assert b_res.backend == "batched", name
            assert b_lines == s_lines, (name, model_name)
            assert b_footer == s_footer, (name, model_name)

    @pytest.mark.parametrize(
        "prefetch,speculation",
        [t for t in TECHNIQUE_COMBOS if any(t)],
        ids=["prefetch", "speculation", "both"])
    @pytest.mark.parametrize("model_name", MODEL_NAMES)
    def test_technique_legs_fall_back_tagged(self, model_name, prefetch,
                                             speculation):
        # techniques are outside the batch envelope: the runner must
        # route to the scalar kernel, keep emitting the archtrace, and
        # tag the result — silent fallback is a bug
        rc = DEFAULT_RUN_CONFIGS[0]
        for name in sorted(STANDARD_TESTS):
            test = STANDARD_TESTS[name]()
            s_lines, s_footer, _ = leg_trace(test, model_name, prefetch,
                                             speculation, rc,
                                             force_scalar=True)
            b_lines, b_footer, b_res = leg_trace(test, model_name, prefetch,
                                                 speculation, rc,
                                                 force_scalar=False)
            assert b_res.backend == "scalar", name
            assert b_res.unsupported_reason is not None, name
            assert b_lines == s_lines and b_footer == s_footer, name

    def test_fallback_reason_lands_in_the_header(self, tmp_path):
        test = STANDARD_TESTS["SB"]()
        _, _, res = leg_trace(test, "SC", False, True,
                              DEFAULT_RUN_CONFIGS[0], force_scalar=False)
        path = str(tmp_path / "fallback.jsonl")
        res.write_archtrace(path, label="tagged")
        header, _events, _footer = read_archtrace(path)
        assert header["backend"] == "scalar"
        assert header["fallback_reason"]


# ----------------------------------------------------------------------
# 4. Differ classes on hand-crafted streams
# ----------------------------------------------------------------------

def _instr_stream():
    """A tiny two-CPU instruction stream (the shared fixture base)."""
    return [
        _mk(0, 0, -1, "fill", line=16, state="S"),
        _mk(3, 0, 0, "retire", pc=0, op="store", bound=False),
        _mk(5, 0, 0, "store", addr=16, value=1),
        _mk(6, 1, 0, "retire", pc=0, op="load", bound=True),
        _mk(6, 1, 0, "load", addr=16, value=0),
    ]


def _write(path, events, cycles=10, memory=None, breakdowns=None,
           dropped=0):
    write_events_jsonl(
        str(path), events,
        header={"backend": "scalar", "label": "fixture"},
        footer={"cycles": cycles,
                "final_memory": {str(k): v
                                 for k, v in (memory or {16: 1}).items()},
                "breakdowns": breakdowns or [],
                "dropped": dropped})
    return str(path)


class TestDifferClasses:
    def test_identical(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _instr_stream())
        b = _write(tmp_path / "b.jsonl", _instr_stream())
        report = diff_archtraces(a, b)
        assert report.classification == "identical"
        assert not report.divergent
        assert report.events_a == report.events_b == 5

    def test_timing_only(self, tmp_path):
        shifted = [ArchEvent(ev.cycle + 2, ev.cpu, ev.seq, ev.kind,
                             ev.detail)
                   for ev in _instr_stream()]
        a = _write(tmp_path / "a.jsonl", _instr_stream(), cycles=10,
                   breakdowns=[{"busy": 6, "read_stall": 4}])
        b = _write(tmp_path / "b.jsonl", shifted, cycles=12,
                   breakdowns=[{"busy": 6, "read_stall": 6}])
        report = diff_archtraces(a, b)
        assert report.classification == "timing-only"
        assert report.first_raw_index == 0
        assert report.cycles_b - report.cycles_a == 2
        assert report.blame_delta[0] == {"busy": 0, "read_stall": 2}

    def test_architectural_value_mismatch(self, tmp_path):
        mutated = _instr_stream()
        mutated[4] = _mk(6, 1, 0, "load", addr=16, value=1)  # stale read
        a = _write(tmp_path / "a.jsonl", _instr_stream())
        b = _write(tmp_path / "b.jsonl", mutated)
        report = diff_archtraces(a, b)
        assert report.classification == "architectural"
        assert report.arch_cpu == 1
        assert "value=0" in report.arch_event_a
        assert "value=1" in report.arch_event_b
        assert "--- divergence ---" in report.context_a

    def test_architectural_missing_event(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _instr_stream())
        b = _write(tmp_path / "b.jsonl", _instr_stream()[:-1])
        report = diff_archtraces(a, b)
        assert report.classification == "architectural"
        assert report.arch_cpu == 1
        assert report.arch_event_b is None

    def test_final_state(self, tmp_path):
        # identical streams that end in different memory: the divergence
        # is outside the traced window
        a = _write(tmp_path / "a.jsonl", _instr_stream(), memory={16: 1})
        b = _write(tmp_path / "b.jsonl", _instr_stream(), memory={16: 2})
        report = diff_archtraces(a, b)
        assert report.classification == "final-state"
        assert report.memory_delta == {"16": (1, 2)}

    def test_timing_perturbed_coherence_is_not_architectural(self, tmp_path):
        # an extra eviction/refill (timing-domain) must not be called
        # an architectural divergence
        noisy = _instr_stream()
        noisy.insert(3, _mk(4, 0, -1, "evict", line=16, state="S"))
        noisy.insert(4, _mk(5, 0, -1, "fill", line=16, state="S"))
        a = _write(tmp_path / "a.jsonl", _instr_stream())
        b = _write(tmp_path / "b.jsonl", noisy)
        report = diff_archtraces(a, b)
        assert report.classification == "timing-only"

    def test_incomplete_streams_are_flagged(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _instr_stream(), dropped=7)
        b = _write(tmp_path / "b.jsonl", _instr_stream())
        report = diff_archtraces(a, b)
        assert report.incomplete
        assert "incomplete" in report.describe()

    def test_report_round_trips_through_dict(self, tmp_path):
        a = _write(tmp_path / "a.jsonl", _instr_stream())
        b = _write(tmp_path / "b.jsonl", _instr_stream()[:-1])
        report = diff_archtraces(a, b)
        again = type(report).from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert again.classification == report.classification
        assert again.memory_delta == report.memory_delta
        assert again.describe() == report.describe()

    def test_diff_main_exit_codes(self, tmp_path, capsys):
        a = _write(tmp_path / "a.jsonl", _instr_stream())
        b = _write(tmp_path / "b.jsonl", _instr_stream())
        assert diff_main(a, b) == 0
        c = _write(tmp_path / "c.jsonl", _instr_stream()[:-1])
        assert diff_main(a, c, as_json=True) == 1
        out = capsys.readouterr().out
        assert "identical" in out and "architectural" in out
